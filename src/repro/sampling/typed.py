"""Per-edge-type static tables — the Meta-path-specific optimization.

Paper section 3 (related work): "a metapath implementation [Euler]
performs pre-processing to build per-edge-type ITS arrays or alias
tables, enabling fast sampling without increasing pre-processing
time/space overhead, as edges are partitioned into disjoint sets by
type.  This, however, cannot be generalized to all dynamic random
walks."

:class:`TypedVertexAliasTables` implements that algorithm-specific
optimization: for each (vertex, edge type) pair, an alias table over
the vertex's edges *of that type*.  A Meta-path step then samples in
O(1) without any rejection, because the walker's current required type
selects the table directly.  Total pre-processing stays O(|E|) — every
edge belongs to exactly one type partition.

It serves as an ablation baseline against KnightKing's general
rejection sampling (see ``benchmarks/test_metapath_typed_ablation.py``)
and as an independent exact sampler in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.alias import build_alias_arrays

__all__ = ["TypedVertexAliasTables"]


class TypedVertexAliasTables:
    """Alias tables partitioned by (vertex, edge type).

    Parameters
    ----------
    graph:
        a heterogeneous graph (``edge_types`` required).
    static_weights:
        optional per-edge Ps; defaults to graph weights or ones.
    """

    def __init__(
        self, graph: CSRGraph, static_weights: np.ndarray | None = None
    ) -> None:
        if graph.edge_types is None:
            raise SamplingError("TypedVertexAliasTables needs edge types")
        if static_weights is None:
            static_weights = (
                graph.weights
                if graph.weights is not None
                else np.ones(graph.num_edges, dtype=np.float64)
            )
        static_weights = np.asarray(static_weights, dtype=np.float64)
        if static_weights.size != graph.num_edges:
            raise SamplingError("static weights must align with graph edges")

        self._graph = graph
        self._static = static_weights
        self.num_types = int(graph.edge_types.max()) + 1 if graph.num_edges else 0

        # Flat grouped layout: edges sorted by (vertex, type) so each
        # group occupies one contiguous span of ``_flat_edges`` /
        # ``_flat_prob`` / ``_flat_alias`` (alias entries are local to
        # the span), with dense (|V| x T) start/count/total maps.  The
        # dense maps make ``sample_batch`` a handful of gathers instead
        # of a per-lane dict walk.
        num_types = max(self.num_types, 1)
        shape = (graph.num_vertices, num_types)
        self._totals = np.zeros(shape, dtype=np.float64)
        self._group_start = np.zeros(shape, dtype=np.int64)
        self._group_count = np.zeros(shape, dtype=np.int64)

        if graph.num_edges:
            sources = np.repeat(
                np.arange(graph.num_vertices, dtype=np.int64),
                np.diff(graph.offsets),
            )
            keys = sources * num_types + graph.edge_types
            # Stable sort keeps each group's edges in CSR order.
            order = np.argsort(keys, kind="stable").astype(np.int64)
            group_keys, group_firsts, group_sizes = np.unique(
                keys[order], return_index=True, return_counts=True
            )
        else:
            order = np.zeros(0, dtype=np.int64)
            group_keys = group_firsts = group_sizes = np.zeros(0, dtype=np.int64)

        flat_edges = []
        flat_prob = []
        flat_alias = []
        cursor = 0
        for key, first, size in zip(group_keys, group_firsts, group_sizes):
            edges = order[first : first + size]
            weights = static_weights[edges]
            total = float(weights.sum())
            if total <= 0:
                continue
            prob, alias = build_alias_arrays(weights)
            vertex, edge_type = divmod(int(key), num_types)
            flat_edges.append(edges)
            flat_prob.append(prob)
            flat_alias.append(alias)
            self._totals[vertex, edge_type] = total
            self._group_start[vertex, edge_type] = cursor
            self._group_count[vertex, edge_type] = size
            cursor += size

        if flat_edges:
            self._flat_edges = np.concatenate(flat_edges)
            self._flat_prob = np.concatenate(flat_prob)
            self._flat_alias = np.concatenate(flat_alias).astype(np.int64)
        else:
            self._flat_edges = np.zeros(0, dtype=np.int64)
            self._flat_prob = np.zeros(0, dtype=np.float64)
            self._flat_alias = np.zeros(0, dtype=np.int64)

    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def static_weights(self) -> np.ndarray:
        return self._static

    def total_entries(self) -> int:
        """Total table entries — O(|E|), the paper's point that typed
        partitioning adds no pre-processing overhead."""
        return int(self._flat_edges.size)

    def has_type(self, vertex: int, edge_type: int) -> bool:
        """Whether ``vertex`` has positive-mass edges of ``edge_type``."""
        if not 0 <= edge_type < self._totals.shape[1]:
            return False
        return self._totals[vertex, edge_type] > 0

    def total_static(self, vertex: int, edge_type: int) -> float:
        if not 0 <= edge_type < self._totals.shape[1]:
            return 0.0
        return float(self._totals[vertex, edge_type])

    def sample(
        self, vertex: int, edge_type: int, rng: np.random.Generator
    ) -> int:
        """Draw a flat edge index of the given type in O(1).

        Raises :class:`SamplingError` when the vertex has no eligible
        edges — the caller terminates the walk, as with any dead end.
        """
        if not self.has_type(vertex, edge_type):
            raise SamplingError(
                f"vertex {vertex} has no edges of type {edge_type}"
            )
        start = int(self._group_start[vertex, edge_type])
        count = int(self._group_count[vertex, edge_type])
        bucket = int(rng.integers(0, count))
        if rng.random() < self._flat_prob[start + bucket]:
            return int(self._flat_edges[start + bucket])
        return int(self._flat_edges[start + self._flat_alias[start + bucket]])

    def sample_batch(
        self,
        vertices: np.ndarray,
        edge_types: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised batch draw; -1 where no eligible edge exists.

        Out-of-range types (a meta-path scheme can demand a type the
        graph never assigned) count as "no eligible edge", matching the
        scalar path's behaviour rather than raising.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        edge_types = np.asarray(edge_types, dtype=np.int64)
        results = np.full(vertices.size, -1, dtype=np.int64)
        if vertices.size == 0:
            return results
        valid = (edge_types >= 0) & (edge_types < self._totals.shape[1])
        counts = np.zeros(vertices.size, dtype=np.int64)
        counts[valid] = self._group_count[vertices[valid], edge_types[valid]]
        lanes = np.flatnonzero(counts > 0)
        if lanes.size == 0:
            return results
        starts = self._group_start[vertices[lanes], edge_types[lanes]]
        buckets = rng.integers(0, counts[lanes])
        coins = rng.random(lanes.size)
        positions = starts + buckets
        local = np.where(
            coins < self._flat_prob[positions],
            buckets,
            self._flat_alias[positions],
        )
        results[lanes] = self._flat_edges[starts + local]
        return results
