"""Per-edge-type static tables — the Meta-path-specific optimization.

Paper section 3 (related work): "a metapath implementation [Euler]
performs pre-processing to build per-edge-type ITS arrays or alias
tables, enabling fast sampling without increasing pre-processing
time/space overhead, as edges are partitioned into disjoint sets by
type.  This, however, cannot be generalized to all dynamic random
walks."

:class:`TypedVertexAliasTables` implements that algorithm-specific
optimization: for each (vertex, edge type) pair, an alias table over
the vertex's edges *of that type*.  A Meta-path step then samples in
O(1) without any rejection, because the walker's current required type
selects the table directly.  Total pre-processing stays O(|E|) — every
edge belongs to exactly one type partition.

It serves as an ablation baseline against KnightKing's general
rejection sampling (see ``benchmarks/test_metapath_typed_ablation.py``)
and as an independent exact sampler in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.csr import CSRGraph
from repro.sampling.alias import build_alias_arrays

__all__ = ["TypedVertexAliasTables"]


class TypedVertexAliasTables:
    """Alias tables partitioned by (vertex, edge type).

    Parameters
    ----------
    graph:
        a heterogeneous graph (``edge_types`` required).
    static_weights:
        optional per-edge Ps; defaults to graph weights or ones.
    """

    def __init__(
        self, graph: CSRGraph, static_weights: np.ndarray | None = None
    ) -> None:
        if graph.edge_types is None:
            raise SamplingError("TypedVertexAliasTables needs edge types")
        if static_weights is None:
            static_weights = (
                graph.weights
                if graph.weights is not None
                else np.ones(graph.num_edges, dtype=np.float64)
            )
        static_weights = np.asarray(static_weights, dtype=np.float64)
        if static_weights.size != graph.num_edges:
            raise SamplingError("static weights must align with graph edges")

        self._graph = graph
        self._static = static_weights
        self.num_types = int(graph.edge_types.max()) + 1 if graph.num_edges else 0

        # For each (vertex, type): the flat indices of matching edges,
        # an alias table over their weights, and the total mass.
        self._edges: dict[tuple[int, int], np.ndarray] = {}
        self._prob: dict[tuple[int, int], np.ndarray] = {}
        self._alias: dict[tuple[int, int], np.ndarray] = {}
        self._totals = np.zeros(
            (graph.num_vertices, max(self.num_types, 1)), dtype=np.float64
        )
        for vertex in range(graph.num_vertices):
            start, end = graph.edge_range(vertex)
            if start == end:
                continue
            types_here = graph.edge_types[start:end]
            for edge_type in np.unique(types_here):
                edge_type = int(edge_type)
                local = np.flatnonzero(types_here == edge_type)
                edges = start + local
                weights = static_weights[edges]
                total = float(weights.sum())
                if total <= 0:
                    continue
                prob, alias = build_alias_arrays(weights)
                key = (vertex, edge_type)
                self._edges[key] = edges
                self._prob[key] = prob
                self._alias[key] = alias
                self._totals[vertex, edge_type] = total

    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def static_weights(self) -> np.ndarray:
        return self._static

    def total_entries(self) -> int:
        """Total table entries — O(|E|), the paper's point that typed
        partitioning adds no pre-processing overhead."""
        return sum(edges.size for edges in self._edges.values())

    def has_type(self, vertex: int, edge_type: int) -> bool:
        """Whether ``vertex`` has positive-mass edges of ``edge_type``."""
        if not 0 <= edge_type < self._totals.shape[1]:
            return False
        return self._totals[vertex, edge_type] > 0

    def total_static(self, vertex: int, edge_type: int) -> float:
        if not 0 <= edge_type < self._totals.shape[1]:
            return 0.0
        return float(self._totals[vertex, edge_type])

    def sample(
        self, vertex: int, edge_type: int, rng: np.random.Generator
    ) -> int:
        """Draw a flat edge index of the given type in O(1).

        Raises :class:`SamplingError` when the vertex has no eligible
        edges — the caller terminates the walk, as with any dead end.
        """
        key = (vertex, edge_type)
        edges = self._edges.get(key)
        if edges is None:
            raise SamplingError(
                f"vertex {vertex} has no edges of type {edge_type}"
            )
        prob = self._prob[key]
        alias = self._alias[key]
        bucket = int(rng.integers(0, edges.size))
        if rng.random() < prob[bucket]:
            return int(edges[bucket])
        return int(edges[alias[bucket]])

    def sample_batch(
        self,
        vertices: np.ndarray,
        edge_types: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised-API batch draw; -1 where no eligible edge exists.

        Internally scalar per lane (the dict-of-tables layout does not
        vectorise), which is fine for the ablation baseline role.
        """
        results = np.full(vertices.size, -1, dtype=np.int64)
        for lane in range(vertices.size):
            key = (int(vertices[lane]), int(edge_types[lane]))
            if key in self._edges:
                results[lane] = self.sample(key[0], key[1], rng)
        return results
