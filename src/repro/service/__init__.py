"""Overload-robust serving layer over the walk engines.

The engines (:mod:`repro.core.engine`, :mod:`repro.cluster.engine`,
:mod:`repro.parallel`) execute walks as fast as they can; this package
makes them *safe to put behind traffic*: bounded admission queues with
load shedding, deadline propagation with cooperative cancellation,
graceful degradation under pressure, a supervised process pool that
cannot hang on a dead worker, and a circuit breaker that sheds fast
when execution keeps failing.  See docs/INTERNALS.md §10 for the
design tour and ``examples/overload.py`` for a bursty-stream demo.
"""

from repro.service.breaker import CircuitBreaker, RetryBudget
from repro.service.deadline import CancelToken, Deadline
from repro.service.degrade import DegradationPolicy, apply_degradation
from repro.service.pool import SupervisedPool
from repro.service.queue import SHED_POLICIES, AdmissionQueue
from repro.service.request import (
    DEADLINE_EXCEEDED,
    FAILED,
    OK,
    SHED,
    WalkRequest,
    WalkResponse,
    WalkTicket,
)
from repro.service.service import WalkService

__all__ = [
    "WalkService",
    "WalkRequest",
    "WalkResponse",
    "WalkTicket",
    "Deadline",
    "CancelToken",
    "AdmissionQueue",
    "SHED_POLICIES",
    "DegradationPolicy",
    "apply_degradation",
    "CircuitBreaker",
    "RetryBudget",
    "SupervisedPool",
    "OK",
    "DEADLINE_EXCEEDED",
    "SHED",
    "FAILED",
]
