"""Circuit breaker and retry budget — fail fast instead of retry-storm.

Two complementary guards around shard/request execution:

* :class:`CircuitBreaker` — the classic three-state machine.  CLOSED
  passes everything and counts consecutive failures; at
  ``failure_threshold`` it OPENs and sheds instantly (no engine is even
  constructed) until ``reset_timeout`` elapses; then HALF_OPEN lets a
  limited number of probe requests through — one success re-CLOSEs,
  one failure re-OPENs with a fresh timer.  A dependency that keeps
  failing therefore costs O(1) work per ``reset_timeout``, not one
  doomed execution per queued request.

* :class:`RetryBudget` — a token bucket that caps *retries* as a
  fraction of successful work.  Each success deposits ``deposit_ratio``
  tokens (up to ``capacity``); each retry withdraws one.  Under a hard
  outage the bucket drains and retries stop, bounding the retry storm
  the supervised pool could otherwise generate by restarting dead
  workers forever.

Both are clock-injectable for deterministic tests and lock-protected
for use from concurrent service workers.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConfigError

__all__ = ["CircuitBreaker", "RetryBudget"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ConfigError("failure_threshold must be positive")
        if reset_timeout < 0:
            raise ConfigError("reset_timeout must be non-negative")
        if half_open_probes <= 0:
            raise ConfigError("half_open_probes must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        A ``True`` from the HALF_OPEN state reserves a probe slot; the
        caller must follow up with :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = HALF_OPEN
                    self._probes_in_flight = 0
                else:
                    self.rejections += 1
                    return False
            # HALF_OPEN: admit up to half_open_probes concurrent probes.
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0


class RetryBudget:
    """Token bucket bounding retries to a fraction of successes."""

    def __init__(
        self,
        capacity: float = 4.0,
        deposit_ratio: float = 0.1,
        initial: float | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigError("retry budget capacity must be positive")
        if deposit_ratio < 0:
            raise ConfigError("deposit_ratio must be non-negative")
        self.capacity = float(capacity)
        self.deposit_ratio = float(deposit_ratio)
        self._tokens = self.capacity if initial is None else float(initial)
        self._lock = threading.Lock()
        self.denied = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def record_success(self) -> None:
        with self._lock:
            self._tokens = min(
                self.capacity, self._tokens + self.deposit_ratio
            )

    def try_acquire(self) -> bool:
        """Spend one token for a retry; ``False`` sheds the retry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.denied += 1
            return False
