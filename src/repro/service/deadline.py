"""Deadlines and cooperative cancellation.

Both engines' run loops accept these between iteration batches (see
:meth:`repro.core.engine.WalkEngine.run`): an expired
:class:`Deadline` or a fired :class:`CancelToken` stops the walk at
the next batch boundary with a partial, well-formed result.  Neither
object consumes randomness — bounding a run never changes the walk it
samples, only where it stops.

Deadlines are stored as an absolute ``time.monotonic`` timestamp, so a
:class:`Deadline` created in the parent process stays valid inside
forked/spawned workers (``CLOCK_MONOTONIC`` is system-wide per boot)
and queue wait counts against the budget, which is the serving
semantic a caller actually wants.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Deadline", "CancelToken"]


class Deadline:
    """An absolute point in monotonic time after which work must stop.

    Parameters
    ----------
    timeout_seconds:
        budget from *now*; :meth:`at` builds from an absolute
        monotonic timestamp instead.
    clock:
        the time source, injectable for deterministic tests.  The
        default (``time.monotonic``) is the only picklable choice —
        deadlines crossing process boundaries must use it.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, timeout_seconds: float, clock=time.monotonic) -> None:
        self._clock = clock
        self.expires_at = clock() + float(timeout_seconds)

    @classmethod
    def at(cls, monotonic_time: float, clock=time.monotonic) -> Deadline:
        """A deadline at an absolute monotonic timestamp."""
        deadline = cls.__new__(cls)
        deadline._clock = clock
        deadline.expires_at = float(monotonic_time)
        return deadline

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def __getstate__(self):
        if self._clock is not time.monotonic:
            raise ValueError(
                "only time.monotonic deadlines can cross process boundaries"
            )
        return self.expires_at

    def __setstate__(self, state) -> None:
        self._clock = time.monotonic
        self.expires_at = state

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.4f}s)"


class CancelToken:
    """A thread-safe latch requesting cooperative cancellation.

    The engines poll :attr:`cancelled` between iteration batches;
    :meth:`cancel` is idempotent and safe from any thread (e.g. a
    service worker cancelling the requests of a shut-down queue).
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancelToken(cancelled={self.cancelled})"
