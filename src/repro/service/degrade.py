"""Graceful degradation under sustained pressure.

When the admission queue stays deep, shedding alone is a blunt tool:
it serves some requests fully and others not at all.  The degradation
ladder instead trades per-request *fidelity* for throughput by
documented, monotone rules keyed on queue fullness (depth/capacity) at
the moment a request starts executing:

1. ``pressure >= drop_paths_at``   — stop recording full walk paths
   (the dominant memory cost of a request);
2. ``pressure >= cap_steps_at``    — cap ``max_steps`` at
   ``max_steps_cap`` (bounded CPU per walker);
3. ``pressure >= shrink_walkers_at`` — scale the walker count by
   ``walker_fraction`` (bounded CPU per request).

Each rung subsumes the ones below it, so a response's recorded
``degradations`` tuple is always a prefix of the ladder — callers can
reason about exactly what they got.  Degradation changes *what walk
was requested*, never how it is sampled: the downgraded config runs
through the ordinary engine with the original seed, and an undegraded
request (pressure below every threshold) is bit-identical to a direct
engine run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WalkConfig
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["DegradationPolicy", "apply_degradation"]


@dataclass(frozen=True)
class DegradationPolicy:
    """Thresholds and magnitudes of the degradation ladder.

    Thresholds are queue-fullness fractions in (0, 1]; a rung set to a
    value > 1 never triggers.  ``min_walkers`` floors the shrink rung
    so a degraded request still does observable work.
    """

    drop_paths_at: float = 0.50
    cap_steps_at: float = 0.75
    shrink_walkers_at: float = 0.90
    max_steps_cap: int = 20
    walker_fraction: float = 0.25
    min_walkers: int = 1

    def __post_init__(self) -> None:
        if not self.drop_paths_at <= self.cap_steps_at <= self.shrink_walkers_at:
            raise ConfigError(
                "degradation thresholds must be ordered: drop_paths_at "
                "<= cap_steps_at <= shrink_walkers_at"
            )
        if self.max_steps_cap <= 0:
            raise ConfigError("max_steps_cap must be positive")
        if not 0.0 < self.walker_fraction <= 1.0:
            raise ConfigError("walker_fraction must be in (0, 1]")
        if self.min_walkers <= 0:
            raise ConfigError("min_walkers must be positive")


def apply_degradation(
    config: WalkConfig,
    graph: CSRGraph,
    pressure: float,
    policy: DegradationPolicy,
) -> tuple[WalkConfig, tuple[str, ...]]:
    """Downgrade ``config`` for the observed queue pressure.

    Returns the (possibly unchanged) config and the tuple of applied
    rung labels, recorded verbatim on the response.  Rungs that would
    not change the config (e.g. paths were never recorded) are
    skipped, so the labels list only *actual* downgrades.
    """
    applied: list[str] = []
    changes: dict = {}

    if pressure >= policy.drop_paths_at and config.record_paths:
        changes["record_paths"] = False
        applied.append("drop_record_paths")

    if pressure >= policy.cap_steps_at and (
        config.max_steps is None or config.max_steps > policy.max_steps_cap
    ):
        changes["max_steps"] = policy.max_steps_cap
        applied.append(f"cap_max_steps:{policy.max_steps_cap}")

    if pressure >= policy.shrink_walkers_at:
        total = config.resolve_num_walkers(graph)
        shrunk = max(
            policy.min_walkers, int(total * policy.walker_fraction)
        )
        if shrunk < total:
            # walks_per_vertex resolves to a concrete count here, so
            # the two exclusive fields collapse into num_walkers.
            changes["num_walkers"] = shrunk
            changes["walks_per_vertex"] = None
            if config.start_vertices is not None:
                changes["start_vertices"] = config.start_vertices[:shrunk]
            applied.append(f"shrink_walkers:{shrunk}")

    if not changes:
        return config, ()
    return config.evolve(**changes), tuple(applied)
