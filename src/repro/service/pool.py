"""A supervised process pool that cannot hang on a dead worker.

``multiprocessing.Pool.map`` blocks forever if a worker is OOM-killed
or calls ``os._exit`` — the result it was going to send never arrives
and nothing notices.  :class:`SupervisedPool` runs one process per
task and supervises the result pipes directly with
``multiprocessing.connection.wait``: a worker that dies closes its
pipe, the EOF wakes the supervisor immediately, and the failure
surfaces as :class:`~repro.errors.WorkerError` naming the task.

Guarantees:

* **no hang** — every outcome (result, exception, death, timeout) is a
  pipe event or a bounded wait;
* **exceptions with context** — a task that raises inside the worker
  re-surfaces as ``WorkerError`` carrying the original traceback text
  plus the task index (callers append seeds etc. via ``describe``);
* **per-task timeouts** — a task exceeding ``task_timeout`` is
  terminated and reported (never silently retried: a task that timed
  out once will time out again);
* **capped restarts** — a worker *death* (crash, not exception) is
  retried with a fresh process up to ``max_restarts`` times per task,
  optionally gated by a shared :class:`~repro.service.breaker.RetryBudget`
  so a hard outage sheds fast instead of retry-storming;
* **cleanup** — on any raise, all still-running workers are terminated
  before the error propagates.

Workers are created with the fork start method where available so
large read-only arguments (the CSR graph) are shared copy-on-write;
elsewhere arguments are pickled (correct, slower).
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from collections import deque
from multiprocessing import connection

from repro.errors import ConfigError, WorkerError

__all__ = ["SupervisedPool"]


def _pool_child(fn, payload, conn) -> None:
    """Worker entry point: report exactly one outcome on the pipe."""
    try:
        result = fn(payload)
    except BaseException:
        exc = sys.exc_info()[1]
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except Exception:
            pass  # parent sees EOF and reports a death instead
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


def _default_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class SupervisedPool:
    """Run tasks across supervised worker processes.

    Parameters
    ----------
    max_workers:
        concurrent worker processes (each task gets a fresh process).
    task_timeout:
        per-task wall-clock budget in seconds; ``None`` disables.
    max_restarts:
        restarts allowed per task after a worker death.
    retry_budget:
        optional shared token bucket consulted *in addition to*
        ``max_restarts`` before any restart.
    registry:
        optional :class:`repro.obs.MetricsRegistry` (duck-typed) that
        receives the pool's supervision counters — tasks dispatched,
        worker restarts, timeouts, worker exceptions.  Workers
        themselves ship metric *deltas* back through the result pipe
        (see :func:`repro.parallel._run_shard`); the registry here only
        counts what the supervisor observed.
    """

    def __init__(
        self,
        max_workers: int,
        task_timeout: float | None = None,
        max_restarts: int = 2,
        retry_budget=None,
        context=None,
        registry=None,
    ) -> None:
        if max_workers <= 0:
            raise ConfigError("max_workers must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigError("task_timeout must be positive")
        if max_restarts < 0:
            raise ConfigError("max_restarts must be non-negative")
        self.max_workers = max_workers
        self.task_timeout = task_timeout
        self.max_restarts = max_restarts
        self.retry_budget = retry_budget
        self._ctx = context if context is not None else _default_context()
        self.registry = registry
        self.restarts = 0  # total worker restarts across run() calls

    def _count(self, name: str, help_text: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(name, help_text).inc(amount)

    # ------------------------------------------------------------------
    def _check_cross_process(self, fn) -> None:
        """Reject callables that cannot cross the process boundary.

        Under ``fork`` a lambda or closure happens to work because the
        child inherits memory; under ``spawn``/``forkserver`` the same
        call dies at pickling time with an opaque error, usually on the
        one platform the author didn't test.  The static analyzer
        (rule RK301 in :mod:`repro.lint`) flags this at review time;
        this is the runtime backstop, raising a named error *before*
        any worker is spawned instead of after.
        """
        qualname = getattr(fn, "__qualname__", "")
        if "<lambda>" in qualname or "<locals>" in qualname:
            if self._ctx.get_start_method() != "fork":
                raise ConfigError(
                    f"task callable {qualname!r} is not module-level; the "
                    f"{self._ctx.get_start_method()!r} start method pickles "
                    "callables by qualified name, so only module-level "
                    "functions can run in workers"
                )

    def run(self, fn, payloads, describe=None) -> list:
        """Execute ``fn(payload)`` for every payload; ordered results.

        ``describe(index)`` customises how a failed task is named in
        the raised :class:`WorkerError` (e.g. shard seed).  Raises on
        the first unrecoverable failure after terminating all other
        workers; partial results are discarded — the caller retries or
        sheds at its own layer.
        """
        self._check_cross_process(fn)
        payloads = list(payloads)
        self._count("pool_tasks", "tasks dispatched to workers", len(payloads))
        describe = describe if describe is not None else (
            lambda index: f"task {index}"
        )
        results: list = [None] * len(payloads)
        attempts = [0] * len(payloads)
        pending = deque(range(len(payloads)))
        running: dict = {}  # conn -> (index, process, started_at)
        try:
            while pending or running:
                self._spawn_ready(fn, payloads, pending, running, attempts)
                ready = connection.wait(
                    list(running), timeout=self._wait_timeout(running)
                )
                if not ready:
                    self._reap_timeouts(running, describe)
                    continue
                for conn in ready:
                    index, process, _started = running.pop(conn)
                    self._collect(
                        fn, conn, index, process, results, pending,
                        attempts, describe,
                    )
        finally:
            for conn, (_index, process, _started) in running.items():
                process.terminate()
                process.join()
                conn.close()
        return results

    # ------------------------------------------------------------------
    def _spawn_ready(self, fn, payloads, pending, running, attempts) -> None:
        while pending and len(running) < self.max_workers:
            index = pending.popleft()
            attempts[index] += 1
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_pool_child,
                args=(fn, payloads[index], child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            running[parent_conn] = (index, process, time.monotonic())

    def _wait_timeout(self, running) -> float | None:
        if self.task_timeout is None or not running:
            return None
        now = time.monotonic()
        remaining = min(
            self.task_timeout - (now - started)
            for _index, _process, started in running.values()
        )
        return max(remaining, 0.0)

    def _reap_timeouts(self, running, describe) -> None:
        now = time.monotonic()
        for conn, (index, process, started) in list(running.items()):
            if now - started >= self.task_timeout:
                del running[conn]
                process.terminate()
                process.join()
                conn.close()
                self._count("pool_timeouts", "tasks killed at task_timeout")
                raise WorkerError(
                    f"{describe(index)} exceeded its "
                    f"{self.task_timeout:.3f}s timeout and was terminated",
                    shard=index,
                    kind="timeout",
                )

    def _collect(
        self, fn, conn, index, process, results, pending, attempts, describe
    ) -> None:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            conn.close()
        process.join()

        if message is None:
            # Death without a report (os._exit, OOM kill, SIGKILL).
            exitcode = process.exitcode
            can_restart = attempts[index] <= self.max_restarts
            if can_restart and (
                self.retry_budget is None or self.retry_budget.try_acquire()
            ):
                self.restarts += 1
                self._count("pool_restarts", "worker deaths retried")
                pending.append(index)
                return
            raise WorkerError(
                f"worker running {describe(index)} died with exit code "
                f"{exitcode} after {attempts[index]} attempt(s) "
                "(restart budget exhausted)",
                shard=index,
                kind="budget" if can_restart else "died",
            )
        if message[0] == "ok":
            results[index] = message[1]
            if self.retry_budget is not None:
                self.retry_budget.record_success()
            return
        _tag, exc_repr, worker_tb = message
        self._count("pool_worker_errors", "tasks that raised in a worker")
        raise WorkerError(
            f"{describe(index)} raised {exc_repr}\n"
            f"--- worker traceback ---\n{worker_tb}",
            shard=index,
            kind="exception",
            worker_traceback=worker_tb,
        )
