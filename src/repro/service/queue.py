"""Bounded admission queue with pluggable load-shedding policies.

Admission control is the first robustness layer: an unbounded queue
turns overload into unbounded latency for *everyone*, while a bounded
queue converts excess load into explicit, accounted shed decisions.
Three policies (chosen at construction):

* ``"reject-newest"`` — a full queue rejects the incoming request
  (classic tail drop; oldest work is never wasted);
* ``"reject-oldest"`` — a full queue evicts the head to admit the
  newcomer (freshest-first; the evicted request has waited longest and
  is the most likely to be past its deadline anyway);
* ``"priority"`` — a full queue evicts the lowest-priority entry,
  newest among ties, if it is strictly lower-priority than the
  newcomer; otherwise the newcomer is rejected.  Dequeue order is also
  priority-aware (highest first, FIFO among equals).

Every :meth:`offer` returns both the admission verdict and the evicted
entries, so the caller can resolve each shed request exactly once —
the accounting identity ``submitted == served + shed + failed``
depends on nothing ever vanishing silently.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import ConfigError

__all__ = ["AdmissionQueue", "SHED_POLICIES"]

SHED_POLICIES = ("reject-newest", "reject-oldest", "priority")


class AdmissionQueue:
    """A thread-safe bounded queue of prioritised entries."""

    def __init__(self, capacity: int, policy: str = "reject-newest") -> None:
        if capacity <= 0:
            raise ConfigError("queue capacity must be positive")
        if policy not in SHED_POLICIES:
            raise ConfigError(
                f"unknown shed policy {policy!r}; choose from {SHED_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # (priority, sequence, item); sequence breaks ties FIFO.
        self._entries: list[tuple[int, int, Any]] = []
        self._sequence = 0
        self._closed = False

    # ------------------------------------------------------------------
    def offer(self, item: Any, priority: int = 0) -> tuple[bool, list[Any]]:
        """Try to admit ``item``.

        Returns ``(admitted, evicted)``: whether the item entered the
        queue, and the list of entries the shedding policy evicted to
        make room (empty except under ``reject-oldest``/``priority``).
        """
        with self._lock:
            if self._closed:
                return False, []
            evicted: list[Any] = []
            if len(self._entries) >= self.capacity:
                victim = self._select_victim(priority)
                if victim is None:
                    return False, []
                self._entries.remove(victim)
                evicted.append(victim[2])
            self._entries.append((priority, self._sequence, item))
            self._sequence += 1
            self._not_empty.notify()
            return True, evicted

    def _select_victim(self, incoming_priority: int):
        """The entry to evict for an incoming request, or ``None`` to
        reject the newcomer instead."""
        if self.policy == "reject-newest":
            return None
        if self.policy == "reject-oldest":
            return min(self._entries, key=lambda entry: entry[1])
        # priority: lowest priority, newest among ties (it has waited
        # the least, so evicting it wastes the least queueing).
        victim = min(self._entries, key=lambda e: (e[0], -e[1]))
        return victim if victim[0] < incoming_priority else None

    # ------------------------------------------------------------------
    def take(self, timeout: float | None = None) -> Any | None:
        """Pop the next entry, waiting up to ``timeout``; ``None`` on
        timeout or when the queue is closed and drained."""
        with self._not_empty:
            if not self._entries:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            if not self._entries:
                return None
            if self.policy == "priority":
                entry = max(self._entries, key=lambda e: (e[0], -e[1]))
                self._entries.remove(entry)
            else:
                entry = self._entries.pop(0)
            return entry[2]

    def drain(self) -> list[Any]:
        """Remove and return every queued entry (dequeue order)."""
        items = []
        while True:
            with self._lock:
                if not self._entries:
                    return items
            item = self.take(timeout=0)
            if item is None:
                return items
            items.append(item)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further offers and wake blocked takers."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    def fullness(self) -> float:
        """Queue pressure in [0, 1] — the degradation ladder's input."""
        return self.depth() / self.capacity

    def __len__(self) -> int:
        return self.depth()
