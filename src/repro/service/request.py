"""Walk requests, responses, and the ticket callers wait on.

A :class:`WalkRequest` is everything needed to execute one walk
through the service: the program, the configuration, an optional
per-request graph (else the service default), a priority for the
shedding policy, a deadline, and an optional shard count for
multi-process execution.  The service resolves every submitted request
into exactly one :class:`WalkResponse`, delivered through the
:class:`WalkTicket` returned by ``submit`` — including shed requests,
so nothing a caller submitted can dangle.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.core.config import WalkConfig
from repro.core.engine import WalkResult
from repro.core.program import WalkerProgram
from repro.errors import (
    DeadlineExceededError,
    OverloadError,
    ServiceError,
)
from repro.service.deadline import CancelToken, Deadline

__all__ = [
    "WalkRequest",
    "WalkResponse",
    "WalkTicket",
    "OK",
    "DEADLINE_EXCEEDED",
    "SHED",
    "FAILED",
]

# Response statuses.
OK = "ok"
DEADLINE_EXCEEDED = "deadline_exceeded"
SHED = "shed"
FAILED = "failed"

_request_ids = itertools.count(1)


@dataclass
class WalkRequest:
    """One walk execution request.

    ``deadline`` may be a :class:`~repro.service.deadline.Deadline`
    or a float budget in seconds — a float starts counting at
    *submission*, so queueing time spends the budget (the serving
    semantic: a caller waiting 50 ms for a 50 ms-deadline answer does
    not care which side of the queue the time went).

    ``num_nodes > 1`` routes the request to the cluster simulator
    (:class:`~repro.cluster.engine.DistributedWalkEngine`); an optional
    ``fault_plan`` then runs it under injected faults with the full
    tolerance stack — crash recovery, exactly-once delivery, and
    straggler handling (health monitoring, speculation, rebalancing) —
    so a degraded simulated cluster still resolves the ticket instead
    of hanging the worker.  Mutually exclusive with ``num_shards``.
    """

    program: WalkerProgram
    config: WalkConfig = field(default_factory=WalkConfig)
    graph: object | None = None
    priority: int = 0
    deadline: Deadline | float | None = None
    num_shards: int = 1
    num_nodes: int = 0
    fault_plan: object | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    tag: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes > 1 and self.num_shards > 1:
            raise ServiceError(
                "a request is either distributed (num_nodes) or sharded "
                "(num_shards), not both"
            )
        if self.fault_plan is not None and self.num_nodes <= 1:
            raise ServiceError("fault_plan requires num_nodes > 1")


@dataclass
class WalkResponse:
    """The service's verdict on one request.

    Exactly one of the four statuses; ``result`` is present for ``OK``
    *and* for ``DEADLINE_EXCEEDED`` (a well-formed partial result —
    consistent stats, walker positions, and path prefixes up to the
    last completed iteration batch).
    """

    request_id: int
    status: str
    result: WalkResult | None = None
    #: the dynamic-graph epoch the walk pinned (None on static graphs)
    graph_epoch: int | None = None
    degradations: tuple[str, ...] = ()
    shed_reason: str | None = None
    error: str | None = None
    wait_seconds: float = 0.0
    run_seconds: float = 0.0
    tag: str = ""

    @property
    def ok(self) -> bool:
        return self.status == OK


class WalkTicket:
    """A handle on an in-flight request.

    Thread-safe: the service resolves it exactly once; any number of
    threads may :meth:`wait` on it.  :meth:`cancel` requests
    cooperative cancellation — a queued request resolves as shed, a
    running one stops at the next iteration batch.
    """

    def __init__(self, request: WalkRequest, deadline: Deadline | None,
                 submitted_at: float) -> None:
        self.request = request
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.cancel_token = CancelToken()
        self._done = threading.Event()
        self._response: WalkResponse | None = None

    # -- service side --------------------------------------------------
    def resolve(self, response: WalkResponse) -> None:
        if self._response is None:
            self._response = response
            self._done.set()

    # -- caller side ---------------------------------------------------
    def cancel(self) -> None:
        self.cancel_token.cancel()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> WalkResponse:
        if not self._done.wait(timeout):
            raise ServiceError(
                f"request {self.request.request_id} not resolved within "
                f"{timeout}s"
            )
        assert self._response is not None
        return self._response

    def result(self, timeout: float | None = None) -> WalkResponse:
        """Alias of :meth:`wait` (concurrent.futures idiom)."""
        return self.wait(timeout)

    def raise_for_status(self, timeout: float | None = None) -> WalkResponse:
        """Wait, then map non-OK statuses onto the error hierarchy."""
        response = self.wait(timeout)
        if response.status == SHED:
            raise OverloadError(
                f"request {response.request_id} shed: {response.shed_reason}"
            )
        if response.status == DEADLINE_EXCEEDED:
            raise DeadlineExceededError(
                f"request {response.request_id} exceeded its deadline "
                f"after {response.run_seconds:.4f}s of execution"
            )
        if response.status == FAILED:
            raise ServiceError(
                f"request {response.request_id} failed: {response.error}"
            )
        return response
