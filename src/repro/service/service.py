"""The overload-robust walk service.

:class:`WalkService` accepts :class:`~repro.service.request.WalkRequest`
objects and executes them through the existing engines with four
robustness layers between the caller and the walk:

1. **admission control** — a bounded queue with a configurable
   load-shedding policy; a full queue turns into explicit shed
   responses, never unbounded latency;
2. **deadlines + cancellation** — each request's deadline (queue wait
   included) propagates into the engine's chunked run loop, which
   stops cooperatively and returns a well-formed partial result;
3. **graceful degradation** — under sustained pressure requests are
   downgraded by the documented ladder (drop path recording, cap
   steps, shrink walkers), with every applied rung recorded on the
   response;
4. **a circuit breaker** — repeated execution failures open the
   circuit and shed instantly until a timed probe succeeds.

The service layer adds no randomness: an undegraded, deadline-free
request produces the bit-identical walk of a direct
``WalkEngine(graph, program, config).run()`` with the same seed.

Accounting is exact — every submitted request resolves into exactly
one of served / shed / failed (see
:class:`~repro.core.stats.ServiceMetrics`), which the soak tests pin
as ``submitted == served + shed + failed`` after a drain.
"""

from __future__ import annotations

import threading
import time

from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.stats import ServiceMetrics
from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, EdgeUpdate, UpdateBatch
from repro.service.breaker import CircuitBreaker
from repro.service.deadline import Deadline
from repro.service.degrade import DegradationPolicy, apply_degradation
from repro.service.queue import AdmissionQueue
from repro.service.request import (
    DEADLINE_EXCEEDED,
    FAILED,
    OK,
    SHED,
    WalkRequest,
    WalkResponse,
    WalkTicket,
)

__all__ = ["WalkService"]


class WalkService:
    """Serve walk requests with admission control and degradation.

    Parameters
    ----------
    graph:
        default graph for requests that do not carry their own.
    num_workers:
        executor threads pulling from the admission queue.
    queue_capacity, shed_policy:
        the bounded admission queue (see
        :class:`~repro.service.queue.AdmissionQueue`).
    degradation:
        the pressure ladder; ``None`` disables degradation entirely.
    breaker:
        circuit breaker around request execution; ``None`` installs
        the default (5 consecutive failures, 1 s reset).
    default_deadline:
        seconds applied to requests submitted without a deadline;
        ``None`` leaves them unbounded.
    tracer:
        optional :class:`repro.obs.Tracer` (duck-typed).  When enabled,
        every executed request lands as a ``service.request`` span
        (trace id ``request-<id>``) and the engines it spawns emit
        their run/superstep spans on a per-request track.  ``None`` or
        a disabled tracer is the hard off-switch — no emission sites
        are touched.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_workers: int = 2,
        queue_capacity: int = 64,
        shed_policy: str = "reject-newest",
        degradation: DegradationPolicy | None = DegradationPolicy(),
        breaker: CircuitBreaker | None = None,
        default_deadline: float | None = None,
        tracer=None,
    ) -> None:
        if num_workers <= 0:
            raise ServiceError("num_workers must be positive")
        self._obs = (
            tracer
            if tracer is not None and getattr(tracer, "enabled", False)
            else None
        )
        self.graph = graph
        # Serialises commits against snapshot pinning: DynamicGraph is
        # not internally thread-safe, but a pinned EpochSnapshot is
        # immutable, so walks never need the lock after pinning.
        self._graph_lock = threading.Lock()
        self.degradation = degradation
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.default_deadline = default_deadline
        self.metrics = ServiceMetrics()
        self._queue = AdmissionQueue(queue_capacity, shed_policy)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"walk-service-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission / admission control
    # ------------------------------------------------------------------
    def submit(self, request: WalkRequest) -> WalkTicket:
        """Offer a request; always returns a ticket that will resolve.

        Shedding happens synchronously here: if the queue is full and
        the policy rejects the newcomer (or evicts a victim), the
        rejected ticket resolves immediately with status ``shed``.
        """
        deadline = request.deadline
        if deadline is None and self.default_deadline is not None:
            deadline = self.default_deadline
        if isinstance(deadline, (int, float)):
            deadline = Deadline(float(deadline))
        ticket = WalkTicket(request, deadline, time.monotonic())

        with self._lock:
            self.metrics.submitted += 1
        if self._closed:
            self._resolve_shed(ticket, "shutdown")
            return ticket
        admitted, evicted = self._queue.offer(ticket, request.priority)
        for victim in evicted:
            self._resolve_shed(victim, f"evicted:{self._queue.policy}")
        if not admitted:
            self._resolve_shed(
                ticket, "shutdown" if self._queue.closed else "queue_full"
            )
            return ticket
        with self._lock:
            self.metrics.admitted += 1
            self.metrics.queue_depth_peak = max(
                self.metrics.queue_depth_peak, self._queue.depth()
            )
        return ticket

    def apply_updates(
        self, updates: UpdateBatch | list[EdgeUpdate]
    ) -> int:
        """Commit one update batch to the service's dynamic graph.

        Requires the service default graph to be a
        :class:`~repro.graph.dynamic.DynamicGraph`; returns the new
        epoch.  Walks already running keep their pinned snapshots;
        requests executed after this commit see the new epoch.
        """
        if not isinstance(self.graph, DynamicGraph):
            raise ServiceError(
                "apply_updates needs a DynamicGraph service graph"
            )
        if not isinstance(updates, UpdateBatch):
            updates = UpdateBatch.from_updates(updates)
        with self._graph_lock:
            epoch = self.graph.commit(updates)
        applied = len(updates)
        with self._lock:
            self.metrics.updates_applied += applied
            self.metrics.epochs_committed += 1
        return epoch

    def _resolve_shed(self, ticket: WalkTicket, reason: str) -> None:
        with self._lock:
            self.metrics.record_shed(reason)
        ticket.resolve(
            WalkResponse(
                request_id=ticket.request.request_id,
                status=SHED,
                shed_reason=reason,
                wait_seconds=time.monotonic() - ticket.submitted_at,
                tag=ticket.request.tag,
            )
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.take(timeout=0.05)
            if ticket is None:
                if self._queue.closed and self._queue.depth() == 0:
                    return
                continue
            with self._lock:
                self._in_flight += 1
            try:
                self._execute(ticket)
            finally:
                with self._lock:
                    self._in_flight -= 1

    def _execute(self, ticket: WalkTicket) -> None:
        obs = self._obs
        if obs is None:
            self._execute_request(ticket)
            return
        started = obs.now()
        self._execute_request(ticket)
        response = ticket._response
        args: dict = {"request_id": ticket.request.request_id}
        if response is not None:
            args["status"] = response.status
            args["wait_seconds"] = round(response.wait_seconds, 6)
            if response.shed_reason is not None:
                args["shed_reason"] = response.shed_reason
            if response.degradations:
                args["degradations"] = list(response.degradations)
        obs.record_span(
            "service.request",
            ts=started,
            dur=obs.now() - started,
            track="service",
            category="service",
            trace_id=f"request-{ticket.request.request_id}",
            args=args,
        )

    def _execute_request(self, ticket: WalkTicket) -> None:
        request = ticket.request
        if ticket.cancel_token.cancelled:
            self._resolve_shed(ticket, "cancelled")
            return
        if not self.breaker.allow():
            self._resolve_shed(ticket, "circuit_open")
            return

        # Degradation is decided by queue pressure at execution start.
        config = request.config
        graph = request.graph if request.graph is not None else self.graph
        if isinstance(graph, DynamicGraph):
            # Pin the current epoch now: the walk runs on an immutable
            # snapshot regardless of updates applied while it executes.
            with self._graph_lock:
                graph = graph.snapshot()
        degradations: tuple[str, ...] = ()
        if self.degradation is not None:
            config, degradations = apply_degradation(
                config, graph, self._queue.fullness(), self.degradation
            )

        started = time.monotonic()
        wait_seconds = started - ticket.submitted_at
        try:
            result = self._run_engines(ticket, graph, request, config)
        except Exception as error:  # noqa: BLE001 - worker must not die
            self.breaker.record_failure()
            with self._lock:
                self.metrics.failed += 1
                self.metrics.record_latency(time.monotonic() - ticket.submitted_at)
            ticket.resolve(
                WalkResponse(
                    request_id=request.request_id,
                    status=FAILED,
                    degradations=degradations,
                    error=f"{type(error).__name__}: {error}",
                    wait_seconds=wait_seconds,
                    run_seconds=time.monotonic() - started,
                    tag=request.tag,
                )
            )
            return

        self.breaker.record_success()
        if result.status == "cancelled":
            # Ran partially, stopped at the caller's request: accounted
            # as shed (the service did not complete it), with the
            # partial result attached for whoever still wants it.
            with self._lock:
                self.metrics.record_shed("cancelled")
            ticket.resolve(
                WalkResponse(
                    request_id=request.request_id,
                    status=SHED,
                    result=result,
                    graph_epoch=result.stats.graph_epoch,
                    degradations=degradations,
                    shed_reason="cancelled",
                    wait_seconds=wait_seconds,
                    run_seconds=time.monotonic() - started,
                    tag=request.tag,
                )
            )
            return
        status = (
            DEADLINE_EXCEEDED if result.status == "deadline_exceeded" else OK
        )
        with self._lock:
            self.metrics.served += 1
            if degradations:
                self.metrics.degraded += 1
            if status == DEADLINE_EXCEEDED:
                self.metrics.deadline_hits += 1
            self.metrics.record_latency(time.monotonic() - ticket.submitted_at)
        ticket.resolve(
            WalkResponse(
                request_id=request.request_id,
                status=status,
                result=result,
                graph_epoch=result.stats.graph_epoch,
                degradations=degradations,
                wait_seconds=wait_seconds,
                run_seconds=time.monotonic() - started,
                tag=request.tag,
            )
        )

    def _run_engines(self, ticket, graph, request, config: WalkConfig):
        if request.num_shards > 1:
            # Imported lazily: repro.parallel imports the supervised
            # pool from this package.
            from repro.parallel import run_parallel_walk

            return run_parallel_walk(
                graph,
                request.program,
                config,
                num_workers=request.num_shards,
                deadline=ticket.deadline,
            )
        if request.num_nodes > 1:
            return self._run_distributed(ticket, graph, request, config)
        engine = WalkEngine(graph, request.program, config)
        if self._obs is not None:
            # Per-request track: concurrent workers must not share a
            # span stack, and the timeline reads better per request.
            engine._obs_track = f"request{request.request_id}"
            engine.observe(self._obs)
        return engine.run(
            deadline=ticket.deadline, cancel=ticket.cancel_token
        )

    def _run_distributed(self, ticket, graph, request, config: WalkConfig):
        """Execute one request on the cluster simulator.

        Crashes degrade onto the survivors rather than aborting, and
        degraded nodes/links engage the straggler-tolerance stack, so a
        fault plan slows the simulated run down but the ticket always
        resolves; deadline/cancel still cut in at every BSP barrier.
        """
        from repro.cluster.engine import DistributedWalkEngine

        engine = DistributedWalkEngine(
            graph,
            request.program,
            config,
            num_nodes=request.num_nodes,
            fault_plan=request.fault_plan,
            degrade_on_crash=True,
        )
        if self._obs is not None:
            engine.observe(self._obs)
        result = engine.run(deadline=ticket.deadline, cancel=ticket.cancel_token)
        with self._lock:
            self.metrics.distributed_runs += 1
            health = engine.cluster.health
            if health is not None:
                self.metrics.straggler_suspicions += health.suspect_events
                self.metrics.walkers_rebalanced += health.migrated_walkers
                self.metrics.speculative_wins += health.speculation_wins
        return result

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Requests admitted but not yet resolved."""
        with self._lock:
            in_flight = self._in_flight
        return self._queue.depth() + in_flight

    def queue_depth(self) -> int:
        return self._queue.depth()

    def accounting_balanced(self) -> bool:
        """The exact conservation law at this instant."""
        return self.metrics.accounting_balanced(pending=self.pending())

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain and join the workers.

        Queued requests are still served (the queue refuses new offers
        but drains normally), so every outstanding ticket resolves.
        """
        self._closed = True
        self._queue.close()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> WalkService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)
