"""Shared test utilities: small graphs, distribution checks, oracles."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.graph.builder import from_edges

__all__ = [
    "diamond_graph",
    "two_triangle_graph",
    "empirical_counts",
    "assert_matches_distribution",
    "exact_node2vec_law",
]


def diamond_graph(weights: bool = False):
    """4-vertex undirected diamond: 0-1, 0-2, 1-2, 1-3, 2-3.

    Small enough to enumerate exact walk laws by hand; vertex 0 and 3
    are NOT adjacent, giving node2vec all three d_tx cases.
    """
    edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
    if weights:
        edges = [(u, v, 1.0 + 0.5 * i) for i, (u, v) in enumerate(edges)]
    return from_edges(4, edges, undirected=True)


def two_triangle_graph():
    """Two triangles sharing vertex 0 (undirected, 5 vertices)."""
    edges = [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]
    return from_edges(5, edges, undirected=True)


def empirical_counts(samples, support_size: int) -> np.ndarray:
    """Histogram of integer samples over 0..support_size-1."""
    return np.bincount(np.asarray(samples, dtype=np.int64), minlength=support_size)


def assert_matches_distribution(
    samples,
    expected_probabilities: np.ndarray,
    significance: float = 1e-4,
) -> None:
    """Chi-square goodness-of-fit check of integer samples.

    ``significance`` is deliberately tiny: these tests should only fail
    for real bugs, not for unlucky draws.  Zero-probability outcomes
    must not appear at all.
    """
    expected_probabilities = np.asarray(expected_probabilities, dtype=np.float64)
    expected_probabilities = expected_probabilities / expected_probabilities.sum()
    counts = empirical_counts(samples, expected_probabilities.size)
    impossible = expected_probabilities == 0
    assert counts[impossible].sum() == 0, (
        f"sampled impossible outcomes: {np.flatnonzero(impossible & (counts > 0))}"
    )
    observed = counts[~impossible]
    expected = expected_probabilities[~impossible] * counts.sum()
    if observed.size < 2:
        return  # degenerate single-outcome distribution
    _stat, p_value = stats.chisquare(observed, expected)
    assert p_value > significance, (
        f"distribution mismatch (p={p_value:.2e}): observed {observed}, "
        f"expected {expected}"
    )


def exact_node2vec_law(
    graph, current: int, previous: int, p: float, q: float, biased: bool
) -> np.ndarray:
    """Exact next-vertex law for node2vec by direct enumeration."""
    start, end = graph.edge_range(current)
    law = np.zeros(graph.num_vertices, dtype=np.float64)
    for edge in range(start, end):
        target = int(graph.targets[edge])
        static = (
            float(graph.weights[edge])
            if (biased and graph.weights is not None)
            else 1.0
        )
        if previous < 0:
            dynamic = 1.0
        elif target == previous:
            dynamic = 1.0 / p
        elif graph.has_edge(previous, target):
            dynamic = 1.0
        else:
            dynamic = 1.0 / q
        law[target] += static * dynamic
    total = law.sum()
    assert total > 0
    return law / total
