# lint-fixture-path: src/repro/core/clean.py
"""RK105 negatives: reads, local arrays, and dict payloads are fine."""

import numpy as np


def read_only(graph, edge):
    return graph.weights[edge] + graph.targets[edge]


def local_arrays(num_vertices, degrees):
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(degrees)  # plain local, not an attribute
    targets = np.empty(int(offsets[-1]), dtype=np.int64)
    targets[:] = -1
    return offsets, targets


def dict_payload(graph):
    payload = {}
    payload["offsets"] = graph.offsets  # string key, not a CSR store
    payload["weights"] = graph.weights
    return payload


def copies_are_fine(graph):
    weights = graph.weights.copy()
    weights[0] = 99.0
    weights.sort()
    return weights


def unrelated_attribute(stats, index):
    stats.latencies[index] = 0.0
    return stats
