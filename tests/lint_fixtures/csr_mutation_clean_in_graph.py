# lint-fixture-path: src/repro/graph/compactor.py
"""RK105 scoping: graph-package construction code may build in place."""

import numpy as np


def fold(base, overlay_degrees):
    offsets = base.offsets.copy()
    base.weights[:] = 1.0  # inside graph/: construction/compaction code
    base.offsets[1:] = np.cumsum(overlay_degrees)
    base.targets.sort()
    return offsets
