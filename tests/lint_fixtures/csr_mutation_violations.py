# lint-fixture-path: src/repro/core/mutate.py
"""RK105 positives: in-place CSR writes outside the graph package."""

import numpy as np


def clobber_weight(graph, edge, value):
    graph.weights[edge] = value  # expect: RK105


def rescale_slice(graph, start, end):
    graph.weights[start:end] *= 2.0  # expect: RK105


def rewire(graph, edge, target):
    graph.targets[edge] = target  # expect: RK105


def shift_offsets(g):
    g.offsets[1:] = g.offsets[1:] + 1  # expect: RK105


def retype(graph, edge):
    graph.edge_types[edge] = 3  # expect: RK105


def zero_everything(graph):
    graph.weights.fill(0.0)  # expect: RK105


def reorder(graph):
    graph.targets.sort()  # expect: RK105


def overwrite(graph, fresh):
    np.copyto(graph.weights, fresh)  # expect: RK105


def unpack_store(graph, edge, a, b):
    graph.targets[edge], other = a, b  # expect: RK105
    return other
