"""Miniature package for ProjectIndex/call-graph unit tests.

Exercises every aliasing shape the index must resolve: a relative
import, an ``import ... as`` rename, a ``from x import y as z``, and
this re-export (``flow_project.Engine`` → ``flow_project.core.Engine``).
"""

from .core import Engine
