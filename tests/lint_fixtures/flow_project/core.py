"""Class hierarchy: Engine.run resolves helper() through its base."""

from flow_project import util as helpers_mod


class Base:
    def helper(self):
        return helpers_mod.shared_constant()

    def run(self):
        return self.helper()


class Engine(Base):
    def helper(self):
        # Overrides Base.helper; MRO resolution must pick this one for
        # Engine instances.
        return 42
