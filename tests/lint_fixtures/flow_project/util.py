"""Call sites through every alias shape."""

from flow_project import Engine as Eng


def shared_constant():
    return 7


def build_and_run():
    engine = Eng()
    return engine.run()


def calls_through_package_reexport():
    return Eng().run()
