"""RK106 fixture package: epoch-snapshot views escaping their epoch."""
