"""A stand-in dynamic graph whose ``snapshot()`` returns an epoch
view, plus a factory that launders the view through a return value —
the indirection the syntactic layer cannot follow."""


class EpochView:
    def __init__(self, epoch):
        self.epoch = epoch
        self.num_edges = 0


class DynamicGraph:
    def __init__(self):
        self._epoch = 0

    def snapshot(self):
        return EpochView(self._epoch)


def make_view(graph: DynamicGraph):
    # Factory indirection: the view is created here, stored elsewhere.
    return graph.snapshot()
