"""Escape sites: stores that let a snapshot view outlive its epoch."""

from flow_rk106.graphlib import DynamicGraph, make_view

_PINNED = None


class ViewCache:
    def __init__(self, graph: DynamicGraph):
        self.view = make_view(graph)  # expect: RK106


def pin_globally(graph: DynamicGraph):
    global _PINNED
    _PINNED = graph.snapshot()  # expect: RK106


def walk_one_epoch(graph: DynamicGraph):
    # Negative: a view held in a local for one walk is the sanctioned
    # pattern — it dies with the frame.
    view = make_view(graph)
    return view.num_edges


def reads_scalar_metadata(graph: DynamicGraph):
    # Negative: scalars copied off the view carry no epoch lifetime.
    view = graph.snapshot()
    epoch = view.epoch
    return epoch
