"""RK110 fixture package: RNG escape through helper indirection.

The re-export below is load-bearing: ``walker.py`` imports
``make_rng`` from the package root, so the analyzer must follow the
``__init__`` re-export chain to see the source.
"""

from flow_rk110.helpers import make_rng
