"""Helpers that create (or launder) RNGs — sources live here, two
frames away from the sinks in walker.py, where the syntactic RK101-103
rules cannot see them."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def make_rng_indirect(seed):
    # Second frame of indirection: taint must survive two summaries.
    return make_rng(seed)


def state_of(rng):
    # Sanctioned transport: a bit_generator state dict pickles fine and
    # re-derives the same stream on the other side.
    return rng.bit_generator.state
