"""Sinks: message sends and serialisation.  Every flagged line looks
completely innocent to the per-file rules — the Generator was created
in another module."""

import pickle

from flow_rk110 import make_rng
from flow_rk110.helpers import make_rng_indirect, state_of


class Channel:
    def send(self, message):
        self.last = message


def leaks_rng_through_two_frames(channel: Channel, seed):
    rng = make_rng_indirect(seed)
    channel.send(rng)  # expect: RK110


def leaks_rng_into_pickle(seed):
    rng = make_rng(seed)
    return pickle.dumps(rng)  # expect: RK110


def sends_state_dict(channel: Channel, seed):
    # Negative: the sanctioned pattern — only the picklable state dict
    # crosses, the live Generator stays node-local.
    rng = make_rng_indirect(seed)
    channel.send(state_of(rng))


def draws_locally(seed, items):
    # Negative: creating and consuming an RNG locally is the whole
    # point; nothing crosses a boundary.
    rng = make_rng(seed)
    return rng.choice(len(items))
