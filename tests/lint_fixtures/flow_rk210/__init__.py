"""RK210 fixture package: wall-clock taint reaching simulated time.

``hosttime.py`` reads the host clock (legal there — it is outside the
``cluster`` region, so syntactic RK201 stays quiet).  The flow rule
fires when those values *flow* into simulated-time code, in either
direction: a cluster function consuming a helper's return value, or an
outside caller passing a tainted argument into cluster code.
"""
