"""Simulated-time code.  No direct clock reads (RK201 is silent), but
wall-clock values still arrive through calls — RK210's territory."""

from flow_rk210.hosttime import budget_seconds


def schedule_with_host_budget(queue):
    deadline = budget_seconds()  # expect: RK210
    return deadline


def consume(value):
    # Taint arrives through the parameter; the region-entry hop is
    # flagged at the *caller* (see main.py), not re-flagged here.
    return value + 1.0


def derives_from_cost_model(cost_model):
    # Negative: simulated seconds come from the cost model, which is
    # the sanctioned way to make timing decisions in here.
    return cost_model.simulated_seconds * 2.0
