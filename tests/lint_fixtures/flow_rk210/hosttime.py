"""Host-side timing helpers — fine on their own (this file is outside
the simulated-time region), poisonous once their values reach it."""

import time


def now():
    return time.perf_counter()


def budget_seconds():
    # Indirect: the wall-clock reading survives arithmetic and an
    # extra frame.
    return now() * 2.0
