"""Outside the region: reading the clock here is fine; *handing* the
reading into simulated-time code is the violation."""

import time

from flow_rk210.cluster.sim import consume, derives_from_cost_model


def feeds_wall_clock_into_simulation():
    started = time.monotonic()
    return consume(started)  # expect: RK210


def passes_clean_config(cost_model):
    # Negative: nothing wall-clock flows in.
    return derives_from_cost_model(cost_model)
