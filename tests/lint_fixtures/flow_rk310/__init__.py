"""RK310 fixture package: unpicklable values reaching spawn sites."""
