"""Process-boundary call sites.  The flagged calls are exactly the
ones the syntactic RK301/RK302 miss: the unpicklable value is hidden
behind a variable or a helper call.  The same-line lambda stays
RK301's finding — the two layers never double-report."""

from flow_rk310.tasks import build_task_indirect, shard_ids, worker_fn


class WorkerPool:
    def run(self, fn, *payloads, describe=None):
        return [fn(p) for p in payloads]


def ships_lambda_through_two_frames(pool: WorkerPool):
    task = build_task_indirect()
    return pool.run(task, 1)  # expect: RK310


def ships_open_handle(pool: WorkerPool, path):
    handle = open(path, "r")
    return pool.run(worker_fn, handle)  # expect: RK310


def same_line_lambda_is_rk301s_job(pool: WorkerPool):
    return pool.run(lambda x: x, 1)  # expect: RK301


def ships_materialised_payload(pool: WorkerPool):
    # Negative: module-level callable + list payload pickle fine.
    return pool.run(worker_fn, shard_ids(3))
