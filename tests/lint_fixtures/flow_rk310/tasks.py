"""Task factories.  The lambdas are born here; the call sites that
ship them to workers live in runner.py and look clean to RK301/RK302."""


def build_task():
    return lambda x: x + 1


def build_task_indirect():
    # Two frames: factory of a factory's result.
    return build_task()


def shard_ids(count):
    # Negative: materialised list — picklable payload.
    return list(range(count))


def worker_fn(x):
    return x * 2
