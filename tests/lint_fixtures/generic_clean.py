"""RK401/RK402/RK403 negatives."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def immutable_defaults(key, pair=(1, 2), label="x", limit=80):
    return key, pair, label, limit


def swallow_specifically(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None


def sorted_set_iteration(a, b, c):
    # Sorting restores a deterministic order, and membership tests
    # never iterate.
    out = []
    for vertex in sorted({a, b, c}):
        out.append(vertex)
    needle = a in {b, c}
    return out, needle


def list_iteration(values):
    return [v * 2 for v in list(values)]
