"""RK401/RK402/RK403 positives: generic determinism footguns."""


def collect(item, bucket=[]):  # expect: RK401
    bucket.append(item)
    return bucket


def tally(key, counts={}):  # expect: RK401
    counts[key] = counts.get(key, 0) + 1
    return counts


def merge(items, *, seen=set()):  # expect: RK401
    seen.update(items)
    return seen


def swallow_everything(fn):
    try:
        return fn()
    except:  # expect: RK402
        return None


def order_depends_on_hash_seed(a, b, c):
    out = []
    for vertex in {a, b, c}:  # expect: RK403
        out.append(vertex)
    return out


def comprehension_over_set(values):
    return [v * 2 for v in set(values)]  # expect: RK403
