# lint-fixture-path: src/repro/cluster/obs_clean.py
"""RK206 negatives: sanctioned tracer use inside a simulated-time module.

Both sanctioned patterns appear: constructing a tracer with an
injected simulation clock, and declaring pre-timed spans on a received
tracer without reading any clock at all.
"""

from repro.obs import Tracer


def build_tracer(cost_model, cluster):
    def simulated_clock():
        return float(sum(cluster.superstep_times))

    return Tracer(clock=simulated_clock)


def declare_superstep(tracer, start, duration, iteration):
    return tracer.record_span(
        "superstep", ts=start, dur=duration, args={"iteration": iteration}
    )
