# lint-fixture-path: src/repro/cli.py
"""RK206 negatives: host-clock tracers are fine outside simulated time."""

import time

from repro.obs import Tracer


def build_host_tracers():
    implicit = Tracer()
    explicit = Tracer(clock=time.perf_counter)
    return implicit, explicit
