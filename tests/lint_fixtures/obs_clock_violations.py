# lint-fixture-path: src/repro/cluster/obs_sim.py
"""RK206 positives: host-clock tracers inside a simulated-time module.

Only clock *references* appear here (never ``time.*()`` calls), so
RK201 stays silent and every finding below is RK206's alone.
"""

import time

from repro.obs import Tracer
from repro.obs.tracer import default_clock


def build_tracers(sim_clock):
    implicit = Tracer()  # expect: RK206
    host = Tracer(clock=time.perf_counter)  # expect: RK206
    relabelled = Tracer(clock=default_clock)  # expect: RK206
    injected = Tracer(clock=sim_clock)
    return implicit, host, relabelled, injected
