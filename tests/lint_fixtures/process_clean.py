"""RK301/RK302 negatives: the portable cross-process contract."""

import multiprocessing


def walk_shard(shard):
    return shard.walk()


def run_module_level(pool, shards):
    # Module-level callable plus plainly picklable payloads.
    return pool.run(walk_shard, shards, timeout=5.0)


def run_with_parent_side_describe(pool, shards):
    # describe= is invoked on the parent side only; a lambda there is
    # explicitly allowed (_PARENT_SIDE_KWARGS).
    return pool.run(walk_shard, shards, describe=lambda s: s.name)


def spawn_module_level(shards):
    proc = multiprocessing.Process(target=walk_shard, args=(shards[0],))
    proc.start()
    return proc


def local_map_is_not_cross_process(items):
    # builtins.map takes lambdas all day; only pool-style attribute
    # calls are treated as boundaries.
    return list(map(lambda x: x + 1, items))
