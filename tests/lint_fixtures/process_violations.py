"""RK301/RK302 positives: unportable cross-process handoffs."""

import multiprocessing


def run_with_lambda(pool, shards):
    return pool.map(lambda shard: shard.walk(), shards)  # expect: RK301


def run_with_nested(pool, shards):
    def walk_shard(shard):
        return shard.walk()

    return pool.run(walk_shard, shards)  # expect: RK301


def spawn_with_lambda(n):
    proc = multiprocessing.Process(target=lambda: n * 2)  # expect: RK301
    proc.start()
    return proc


def payload_with_lambda(pool, walk_shard, shards):
    return pool.run(walk_shard, shards, key=lambda s: s.rank)  # expect: RK302


def payload_with_generator(pool, walk_shard, shards):
    return pool.map(walk_shard, (s.split() for s in shards))  # expect: RK302


def payload_with_open_file(pool, walk_shard, path):
    return pool.run(walk_shard, open(path))  # expect: RK302
