# lint-fixture-path: src/repro/cluster/retry_ok.py
"""RK204 negatives: jittered waits, adaptive timers, one-shot sleeps."""

import time

import numpy as np


def retry_with_rng_jitter(send, base, seed):
    rng = np.random.default_rng(seed)
    attempt = 0
    while not send():
        attempt += 1
        time.sleep(base * 2 ** attempt * (1.0 + 0.25 * rng.random()))
    return attempt


def retry_with_adaptive_timer(send, timers, src, dst):
    attempt = 0
    while not send():
        attempt += 1
        time.sleep(timers.backoff_wait(src, dst, attempt, salt=0))
    return attempt


def retry_with_precomputed_jitter(send, base, jitter_unit):
    attempt = 0
    while not send():
        attempt += 1
        time.sleep(base * 2 ** attempt * (1.0 + jitter_unit))
    return attempt


def one_shot_pause(warmup_seconds):
    # Not a retry loop: a single settle-down pause is fine.
    time.sleep(warmup_seconds)
    return True
