# lint-fixture-path: src/repro/cluster/retry.py
"""RK204 positives: fixed/unjittered retry sleeps in a cluster module."""

import asyncio
import time


def retry_fixed(send):
    for _ in range(5):
        if send():
            return True
        time.sleep(0.1)  # expect: RK204
    return False


def retry_exponential_no_jitter(send, base):
    attempt = 0
    while not send():
        attempt += 1
        time.sleep(base * 2 ** attempt)  # expect: RK204
    return attempt


def retry_capped_no_jitter(send, delay):
    while not send():
        time.sleep(min(delay, 30.0))  # expect: RK204
        delay *= 2.0


async def retry_async_fixed(send):
    while not await send():
        await asyncio.sleep(1.0)  # expect: RK204
