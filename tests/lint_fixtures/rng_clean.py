"""RK101/RK102/RK103 negatives: disciplined RNG use must not fire."""

import numpy as np
from numpy.random import default_rng


def seeded_generators(seed):
    a = np.random.default_rng(seed)
    b = np.random.default_rng(0)
    c = default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(1,)))
    return a, b, c


def rng_as_parameter(rng: np.random.Generator, n: int):
    # Drawing from a threaded Generator is the sanctioned pattern.
    return rng.random(n), rng.integers(0, 10, size=n)


def new_api_types_are_fine(seed):
    sequence = np.random.SeedSequence(seed)
    bitgen = np.random.PCG64(sequence)
    return np.random.Generator(bitgen)


def shadowing_is_not_the_stdlib(items):
    # A local callable named `random` is not the stdlib module.
    def random():
        return 4

    return random(), items
