"""RK101/RK102/RK103 positives: every undisciplined way to draw."""

import random
from random import shuffle

import numpy as np
from numpy.random import default_rng


def stdlib_draws(items):
    coin = random.random()  # expect: RK101
    pick = random.choice(items)  # expect: RK101
    shuffle(items)  # expect: RK101
    random.seed(42)  # expect: RK101
    return coin, pick


def unseeded_generators():
    a = np.random.default_rng()  # expect: RK102
    b = np.random.default_rng(None)  # expect: RK102
    c = default_rng()  # expect: RK102
    return a, b, c


def legacy_global_state(n):
    np.random.seed(7)  # expect: RK103
    xs = np.random.rand(n)  # expect: RK103
    ys = np.random.normal(size=n)  # expect: RK103
    zs = np.random.randint(0, 10, size=n)  # expect: RK103
    np.random.shuffle(xs)  # expect: RK103
    return xs, ys, zs
