# lint-fixture-path: src/repro/cluster/engine.py
"""RK201 negative: the allowlisted wall-time-accounting file."""

import time


def account_wall_time(stats):
    # cluster/engine.py is on WALL_CLOCK_ALLOWLIST: it reports host
    # wall time of the simulation run, which never feeds simulated
    # seconds or replayed decisions.
    stats.wall_time_seconds = time.perf_counter() - stats.wall_start
    return stats


def simulated_clock_is_fine(cost_model, messages):
    # Simulated seconds come from the cost model, never the host.
    return cost_model.batch_cost(len(messages))
