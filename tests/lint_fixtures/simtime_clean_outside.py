# lint-fixture-path: src/repro/service/server.py
"""RK201 negative: wall-clock reads outside simulated-time packages."""

import time


def deadline_remaining(deadline):
    # The serving layer runs on real time; RK201 is scoped to the
    # simulator packages and must stay silent here.
    return deadline - time.monotonic()


def profile(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
