# lint-fixture-path: src/repro/cluster/sim.py
"""RK201 positives: wall-clock reads inside a simulated-time module."""

import time
from time import perf_counter
from datetime import datetime


def advance(events):
    started = time.time()  # expect: RK201
    tick = perf_counter()  # expect: RK201
    stamp = datetime.now()  # expect: RK201
    nanos = time.monotonic_ns()  # expect: RK201
    return started, tick, stamp, nanos, len(events)
