"""Suppression mechanics: inline disables absorb findings; stale ones
surface as RK001."""

import random


def sanctioned_stdlib_use(items):
    # A justified, documented exception: the disable comment absorbs
    # the RK101 that would otherwise fire on this line.
    return random.choice(items)  # lint: disable=RK101 -- fixture: sanctioned

def no_violation_here(items):
    return sorted(items)  # lint: disable=RK103 -- stale  # expect: RK001
