"""Suppression mechanics: inline disables absorb findings; stale ones
surface as RK001.  Suppressions anchor to the whole logical statement:
a trailing disable on any continuation line of a multi-line statement
absorbs findings reported at the statement head, and a disable above a
decorated function covers findings on the ``def`` line itself."""

import random


def sanctioned_stdlib_use(items):
    # A justified, documented exception: the disable comment absorbs
    # the RK101 that would otherwise fire on this line.
    return random.choice(items)  # lint: disable=RK101 -- fixture: sanctioned

def no_violation_here(items):
    return sorted(items)  # lint: disable=RK103 -- stale  # expect: RK001


def multiline_trailing_disable(items):
    # RK101 reports at the statement head (the `chosen = ...` line);
    # the disable sits on the closing-paren line two lines later and
    # still absorbs it, because both lines belong to one statement.
    chosen = random.sample(
        items,
        2,
    )  # lint: disable=RK101 -- fixture: multi-line statement anchor
    return chosen


def multiline_head_disable(items):
    # The mirror case: disable on the head line, offending call lowered
    # onto a continuation line.
    return random.choices(  # lint: disable=RK101 -- fixture: head anchor
        items,
        k=3,
    )


def _identity(fn):
    return fn


# lint: disable=RK401 -- fixture: decorated def, disable above decorator
@_identity
def decorated_mutable_default(acc=[]):
    return acc


def multiline_stale_disable(items):
    # A statement-anchored suppression that matches nothing is still
    # reported as stale, at the line the comment sits on.
    return sorted(
        items,
    )  # lint: disable=RK102 -- fixture: stale on continuation  # expect: RK001
