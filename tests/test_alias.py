"""Unit and property tests for alias-method sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.generators import truncated_power_law_graph
from repro.sampling.alias import AliasTable, VertexAliasTables, build_alias_arrays

from tests.helpers import assert_matches_distribution, diamond_graph


class TestBuildAliasArrays:
    def test_structure(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        prob, alias = build_alias_arrays(weights)
        assert prob.shape == alias.shape == (4,)
        assert np.all((prob >= 0) & (prob <= 1 + 1e-12))
        assert np.all((alias >= 0) & (alias < 4))

    def test_reconstructs_weights(self):
        """Total bucket mass assigned to each outcome equals its weight."""
        weights = np.array([0.5, 3.0, 1.5, 2.0, 0.1])
        prob, alias = build_alias_arrays(weights)
        mass = np.zeros(5)
        per_bucket = weights.sum() / 5
        for bucket in range(5):
            mass[bucket] += prob[bucket] * per_bucket
            mass[alias[bucket]] += (1 - prob[bucket]) * per_bucket
        np.testing.assert_allclose(mass, weights, rtol=1e-9)

    def test_uniform_weights(self):
        prob, _alias = build_alias_arrays(np.ones(7))
        np.testing.assert_allclose(prob, np.ones(7))

    def test_single_outcome(self):
        prob, alias = build_alias_arrays(np.array([5.0]))
        assert prob[0] == pytest.approx(1.0)
        assert alias[0] == 0

    def test_zero_weight_entries_never_sampled(self):
        weights = np.array([0.0, 1.0, 0.0, 2.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(0)
        samples = table.sample_many(rng, 4000)
        assert set(np.unique(samples)) <= {1, 3}

    def test_errors(self):
        with pytest.raises(SamplingError):
            build_alias_arrays(np.array([]))
        with pytest.raises(SamplingError):
            build_alias_arrays(np.array([-1.0, 2.0]))
        with pytest.raises(SamplingError):
            build_alias_arrays(np.zeros(3))


class TestAliasTable:
    def test_distribution(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(1)
        samples = table.sample_many(rng, 40_000)
        assert_matches_distribution(samples, weights)

    def test_scalar_matches_batch_distribution(self):
        weights = np.array([5.0, 1.0, 1.0])
        table = AliasTable(weights)
        rng = np.random.default_rng(2)
        samples = [table.sample(rng) for _ in range(20_000)]
        assert_matches_distribution(samples, weights)


class TestVertexAliasTables:
    def test_per_vertex_distribution(self):
        graph = diamond_graph(weights=True)
        tables = VertexAliasTables(graph)
        rng = np.random.default_rng(3)
        for vertex in range(graph.num_vertices):
            start, end = graph.edge_range(vertex)
            samples = [tables.sample(vertex, rng) - start for _ in range(8000)]
            assert_matches_distribution(samples, graph.edge_weights(vertex))

    def test_default_weights_are_graph_weights(self):
        graph = assign_random_weights(
            truncated_power_law_graph(50, 2.0, 2, 10, seed=0), seed=1
        )
        tables = VertexAliasTables(graph)
        np.testing.assert_array_equal(tables.static_weights, graph.weights)
        assert tables.total_static(0) == pytest.approx(
            graph.total_out_weight(0)
        )

    def test_batch_matches_scalar_distribution(self):
        graph = diamond_graph(weights=True)
        tables = VertexAliasTables(graph)
        rng = np.random.default_rng(4)
        vertices = np.full(30_000, 1, dtype=np.int64)
        start, _end = graph.edge_range(1)
        samples = tables.sample_batch(vertices, rng) - start
        assert_matches_distribution(samples, graph.edge_weights(1))

    def test_custom_static_weights(self):
        graph = diamond_graph()
        custom = np.arange(1.0, graph.num_edges + 1.0)
        tables = VertexAliasTables(graph, custom)
        rng = np.random.default_rng(5)
        start, end = graph.edge_range(2)
        samples = [tables.sample(2, rng) - start for _ in range(10_000)]
        assert_matches_distribution(samples, custom[start:end])

    def test_dead_end_vertex(self):
        graph = from_edges(3, [(0, 1)])
        tables = VertexAliasTables(graph)
        rng = np.random.default_rng(6)
        with pytest.raises(SamplingError):
            tables.sample(1, rng)
        with pytest.raises(SamplingError):
            tables.sample_batch(np.array([1]), rng)

    def test_zero_mass_vertex(self):
        graph = from_edges(3, [(0, 1), (0, 2)])
        tables = VertexAliasTables(graph, np.zeros(2))
        rng = np.random.default_rng(7)
        with pytest.raises(SamplingError):
            tables.sample(0, rng)

    def test_misaligned_weights(self):
        with pytest.raises(SamplingError):
            VertexAliasTables(diamond_graph(), np.ones(3))

    def test_negative_weights(self):
        graph = from_edges(2, [(0, 1)])
        with pytest.raises(SamplingError):
            VertexAliasTables(graph, np.array([-1.0]))

    def test_totals_array(self):
        graph = diamond_graph(weights=True)
        tables = VertexAliasTables(graph)
        for vertex in range(4):
            assert tables.totals[vertex] == pytest.approx(
                graph.total_out_weight(vertex)
            )


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0),
        min_size=1,
        max_size=30,
    )
)
def test_alias_mass_conservation_property(weights):
    """For any non-negative weights with positive total, the alias
    table's implied per-outcome mass equals the input weights."""
    weights = np.asarray(weights)
    if weights.sum() <= 0:
        return
    prob, alias = build_alias_arrays(weights)
    n = weights.size
    mass = np.zeros(n)
    per_bucket = weights.sum() / n
    for bucket in range(n):
        mass[bucket] += prob[bucket] * per_bucket
        mass[alias[bucket]] += (1 - prob[bucket]) * per_bucket
    np.testing.assert_allclose(mass, weights, rtol=1e-6, atol=1e-9)
