"""Tests for walk analysis utilities."""

import numpy as np
import pytest

from repro.analysis import (
    empirical_transition_matrix,
    load_corpus,
    save_corpus,
    skipgram_pairs,
    transition_counts,
    visit_counts,
)
from repro.errors import ReproError


PATHS = [np.array([0, 1, 2, 1]), np.array([2, 0]), np.array([3])]


class TestCounts:
    def test_visit_counts(self):
        counts = visit_counts(PATHS, 5)
        assert counts.tolist() == [2, 2, 2, 1, 0]

    def test_transition_counts(self):
        counts = transition_counts(PATHS, 4)
        assert counts[0, 1] == 1
        assert counts[1, 2] == 1
        assert counts[2, 1] == 1
        assert counts[2, 0] == 1
        assert counts.sum() == 4  # total moves

    def test_repeated_transition_accumulates(self):
        counts = transition_counts([np.array([0, 1, 0, 1])], 2)
        assert counts[0, 1] == 2
        assert counts[1, 0] == 1

    def test_empirical_transition_matrix_rows_normalised(self):
        matrix = empirical_transition_matrix(PATHS, 4)
        row_sums = matrix.sum(axis=1)
        assert row_sums[0] == pytest.approx(1.0)
        assert row_sums[2] == pytest.approx(1.0)
        assert row_sums[3] == 0.0  # vertex 3 never moved

    def test_matches_engine_law(self):
        """Empirical transition matrix of a uniform walk approximates
        the uniform row-stochastic matrix."""
        from repro.algorithms import UniformWalk
        from repro.core.config import WalkConfig
        from repro.core.engine import WalkEngine
        from tests.helpers import diamond_graph

        graph = diamond_graph()
        config = WalkConfig(num_walkers=4000, max_steps=10, record_paths=True)
        result = WalkEngine(graph, UniformWalk(), config).run()
        matrix = empirical_transition_matrix(result.paths, 4)
        for vertex in range(4):
            neighbors = graph.neighbors(vertex)
            expected = 1.0 / neighbors.size
            for target in neighbors:
                assert matrix[vertex, target] == pytest.approx(
                    expected, abs=0.05
                )


class TestSkipGram:
    def test_window_one(self):
        pairs = list(skipgram_pairs([np.array([5, 6, 7])], window=1))
        assert sorted(pairs) == [(5, 6), (6, 5), (6, 7), (7, 6)]

    def test_window_clipped_at_boundaries(self):
        pairs = list(skipgram_pairs([np.array([1, 2])], window=10))
        assert sorted(pairs) == [(1, 2), (2, 1)]

    def test_pair_count_formula(self):
        # For a walk of length L and window w <= L-1:
        # pairs = 2 * sum over offsets 1..w of (L - offset).
        walk = np.arange(10)
        window = 3
        pairs = list(skipgram_pairs([walk], window=window))
        expected = 2 * sum(10 - offset for offset in range(1, window + 1))
        assert len(pairs) == expected

    def test_invalid_window(self):
        with pytest.raises(ReproError):
            list(skipgram_pairs([np.array([0, 1])], window=0))


class TestCorpusIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "corpus.txt"
        save_corpus(PATHS, path)
        loaded = load_corpus(path)
        assert len(loaded) == 3
        for original, reloaded in zip(PATHS, loaded):
            np.testing.assert_array_equal(original, reloaded)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("0 1\n\n2 3\n")
        assert len(load_corpus(path)) == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("0 one\n")
        with pytest.raises(ReproError):
            load_corpus(path)
