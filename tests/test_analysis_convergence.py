"""Tests for stationary-distribution and clustering analysis."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import UniformWalk
from repro.analysis import (
    estimate_clustering_coefficient,
    stationary_distribution,
    visit_counts,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ReproError
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, uniform_degree_graph

from tests.helpers import diamond_graph


class TestStationaryDistribution:
    def test_undirected_degree_proportional(self):
        graph = diamond_graph()
        stationary = stationary_distribution(graph)
        degrees = graph.out_degrees().astype(float)
        np.testing.assert_allclose(
            stationary, degrees / degrees.sum(), atol=1e-8
        )

    def test_weighted_stationary(self):
        # Two-state chain with asymmetric weights.
        graph = from_edges(2, [(0, 1, 1.0), (1, 0, 1.0), (0, 0, 3.0)])
        stationary = stationary_distribution(graph)
        # pi P = pi: pi0 * 1/4 = pi1 -> pi = (4/5, 1/5).
        np.testing.assert_allclose(stationary, [0.8, 0.2], atol=1e-6)

    def test_sums_to_one(self):
        graph = uniform_degree_graph(40, 4, seed=0, undirected=True)
        assert stationary_distribution(graph).sum() == pytest.approx(1.0)

    def test_walk_visits_converge_to_stationary(self):
        """Long uniform walks spend time per vertex proportionally to
        the stationary distribution — the engine against theory."""
        graph = uniform_degree_graph(30, 4, seed=1, undirected=True)
        config = WalkConfig(num_walkers=200, max_steps=200, record_paths=True, seed=2)
        result = WalkEngine(graph, UniformWalk(), config).run()
        empirical = visit_counts(result.paths, 30).astype(float)
        empirical /= empirical.sum()
        exact = stationary_distribution(graph)
        assert np.abs(empirical - exact).max() < 0.01


class TestClusteringEstimate:
    def test_complete_graph_is_fully_clustered(self):
        graph = complete_graph(8)
        estimate = estimate_clustering_coefficient(graph, 500, seed=0)
        assert estimate == 1.0

    def test_triangle_free_graph(self):
        # A 4-cycle has wedges but no triangles.
        graph = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)], undirected=True)
        estimate = estimate_clustering_coefficient(graph, 500, seed=1)
        assert estimate == 0.0

    def test_matches_networkx_transitivity(self):
        graph = uniform_degree_graph(60, 6, seed=3, undirected=True)
        sources = np.repeat(np.arange(60), graph.out_degrees())
        nx_graph = nx.Graph()
        nx_graph.add_edges_from(zip(sources.tolist(), graph.targets.tolist()))
        exact = nx.transitivity(nx_graph)
        estimate = estimate_clustering_coefficient(graph, 20_000, seed=4)
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_no_wedges(self):
        graph = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ReproError):
            estimate_clustering_coefficient(graph, 10)
