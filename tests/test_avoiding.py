"""Tests for the windowed self-avoiding walk and walker history."""

import numpy as np
import pytest

from repro.algorithms import NonBacktrackingWalk, WindowedSelfAvoidingWalk
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.snapshot import restore_checkpoint, save_checkpoint
from repro.core.walker import NO_VERTEX, WalkerSet
from repro.errors import ProgramError
from repro.graph.builder import from_edges
from repro.graph.generators import ring_graph, uniform_degree_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(150, 6, seed=0, undirected=True)


class TestWalkerHistory:
    def test_history_shifts_on_move(self):
        walkers = WalkerSet(np.array([5]), history_depth=3)
        assert walkers.history.shape == (1, 3)
        assert np.all(walkers.history == NO_VERTEX)
        walkers.move(np.array([0]), np.array([6]))
        walkers.move(np.array([0]), np.array([7]))
        walkers.move(np.array([0]), np.array([8]))
        walkers.move(np.array([0]), np.array([9]))
        # Most recent first: came from 8, before that 7, before that 6.
        assert walkers.history[0].tolist() == [8, 7, 6]
        assert walkers.previous[0] == 8

    def test_depth_one_has_no_history_matrix(self):
        walkers = WalkerSet(np.array([1]), history_depth=1)
        assert walkers.history is None
        assert walkers.recent_vertices(0).tolist() == [NO_VERTEX]

    def test_invalid_depth(self):
        with pytest.raises(ProgramError):
            WalkerSet(np.array([0]), history_depth=0)

    def test_view_recent(self):
        walkers = WalkerSet(np.array([3]), history_depth=2)
        walkers.move(np.array([0]), np.array([4]))
        view = walkers.view(0)
        assert view.recent.tolist() == [3, NO_VERTEX]


class TestWindowedSelfAvoiding:
    def test_invalid_window(self):
        with pytest.raises(ProgramError):
            WindowedSelfAvoidingWalk(window=0)

    def test_window_respected_in_paths(self, graph):
        window = 3
        config = WalkConfig(num_walkers=200, max_steps=25, record_paths=True, seed=1)
        result = WalkEngine(
            graph, WindowedSelfAvoidingWalk(window=window), config
        ).run()
        for path in result.paths:
            for position in range(1, len(path)):
                forbidden = path[max(0, position - 1 - window) : position]
                # The vertex moved to must not be among the window of
                # stops preceding the move's source.
                assert path[position] not in forbidden[:-1] or window == 0

    def test_no_revisit_within_window_strict(self, graph):
        """Direct check: v_t differs from v_{t-2} .. v_{t-1-window}."""
        window = 2
        config = WalkConfig(num_walkers=150, max_steps=20, record_paths=True, seed=2)
        result = WalkEngine(
            graph, WindowedSelfAvoidingWalk(window=window), config
        ).run()
        for path in result.paths:
            for position in range(len(path)):
                lookback = path[max(0, position - window) : position]
                assert path[position] not in lookback

    def test_window_one_equals_nonbacktracking_law(self):
        graph = uniform_degree_graph(60, 5, seed=3, undirected=True)
        config = WalkConfig(
            num_walkers=4000,
            max_steps=2,
            record_paths=True,
            seed=4,
            start_vertices=np.zeros(4000, dtype=np.int64),
        )
        avoiding = WalkEngine(
            graph, WindowedSelfAvoidingWalk(window=1, biased=False), config
        ).run()
        nonback = WalkEngine(
            graph, NonBacktrackingWalk(biased=False), config
        ).run()
        a = np.bincount([int(p[-1]) for p in avoiding.paths], minlength=60)
        b = np.bincount([int(p[-1]) for p in nonback.paths], minlength=60)
        assert np.abs(a / 4000 - b / 4000).max() < 0.04

    def test_dead_end_on_exhausted_neighbourhood(self):
        # Path graph 0-1-2: from 2 with window 2 there is nowhere to go.
        graph = from_edges(3, [(0, 1), (1, 2)], undirected=True)
        config = WalkConfig(
            num_walkers=1,
            max_steps=10,
            record_paths=True,
            start_vertices=np.array([0]),
        )
        result = WalkEngine(
            graph, WindowedSelfAvoidingWalk(window=2), config
        ).run()
        assert result.paths[0].tolist() == [0, 1, 2]
        assert result.stats.termination.by_dead_end == 1

    def test_ring_full_loop(self):
        # On a cycle, a window-2 avoider must march around the ring.
        graph = ring_graph(10, undirected=True)
        config = WalkConfig(
            num_walkers=50,
            max_steps=9,
            record_paths=True,
            seed=5,
            start_vertices=np.zeros(50, dtype=np.int64),
        )
        result = WalkEngine(
            graph, WindowedSelfAvoidingWalk(window=2), config
        ).run()
        for path in result.paths:
            assert len(set(path.tolist())) == len(path)  # no revisits at all

    def test_distributed_execution(self, graph):
        config = WalkConfig(num_walkers=60, max_steps=12, record_paths=True, seed=6)
        result = DistributedWalkEngine(
            graph, WindowedSelfAvoidingWalk(window=3), config, num_nodes=4
        ).run()
        for path in result.paths:
            for position in range(len(path)):
                lookback = path[max(0, position - 3) : position]
                assert path[position] not in lookback

    def test_checkpoint_preserves_history(self, graph, tmp_path):
        config = WalkConfig(num_walkers=30, max_steps=15, seed=7)
        program = WindowedSelfAvoidingWalk(window=3)
        engine = WalkEngine(graph, program, config)
        engine.run(max_iterations=5)
        history_before = engine.walkers.history.copy()
        checkpoint = tmp_path / "avoid.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, WindowedSelfAvoidingWalk(window=3), config, checkpoint
        )
        np.testing.assert_array_equal(resumed.walkers.history, history_before)
        result = resumed.run()
        assert result.walkers.num_active == 0
