"""Smoke tests for the benchmark harness at tiny scales.

Each experiment runner must produce a well-formed ResultTable with the
paper-shaped qualitative outcome; the full-scale runs live under
``benchmarks/``.
"""

import pytest

from repro.bench import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    memory,
    table1,
    table5,
    tables34,
)
from repro.bench.reporting import ResultTable
from repro.bench.workloads import (
    extrapolate_walkers,
    paper_algorithms,
    paper_config,
    prepare_graph,
)


class TestWorkloads:
    def test_paper_algorithms_roster(self):
        specs = paper_algorithms()
        assert [s.name for s in specs] == [
            "DeepWalk",
            "PPR",
            "Meta-path",
            "node2vec",
        ]
        ppr = specs[1]
        assert ppr.termination_probability == pytest.approx(1 / 80)
        assert ppr.max_steps is None

    def test_paper_config_walker_counts(self):
        spec = paper_algorithms()[0]
        graph = prepare_graph("livejournal", spec, scale=0.1, weighted=False)
        assert paper_config(spec, graph).num_walkers == graph.num_vertices
        assert (
            paper_config(spec, graph, walker_fraction=0.5).num_walkers
            == graph.num_vertices // 2
        )

    def test_prepare_graph_types_for_metapath(self):
        spec = paper_algorithms()[2]
        graph = prepare_graph("twitter", spec, scale=0.1, weighted=False)
        assert graph.is_heterogeneous

    def test_extrapolation(self):
        assert extrapolate_walkers(2.0, 0.1) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            extrapolate_walkers(1.0, 0.0)

    def test_extrapolation_is_linear_in_walkers(self):
        """The paper validates R^2 >= 0.9998 for time-vs-walkers; here
        we check the work counters scale linearly."""
        from repro.baselines import FullScanWalkEngine
        from repro.core.config import WalkConfig
        from repro.algorithms import Node2Vec
        from repro.graph.datasets import load_dataset

        graph = load_dataset("friendster", scale=0.1)
        evals = []
        for walkers in (100, 200, 400):
            config = WalkConfig(num_walkers=walkers, max_steps=10, seed=0)
            result = FullScanWalkEngine(
                graph, Node2Vec(p=2, q=0.5, biased=False), config
            ).run()
            evals.append(result.stats.counters.pd_evaluations)
        assert evals[1] == pytest.approx(2 * evals[0], rel=0.15)
        assert evals[2] == pytest.approx(4 * evals[0], rel=0.15)


class TestTable1:
    def test_shape(self):
        table = table1.run(scale=0.2, walk_length=10, full_scan_fraction=0.05)
        assert isinstance(table, ResultTable)
        assert len(table.rows) == 2
        full = [float(v) for v in table.column("full-scan edges/step")]
        kk = [float(v) for v in table.column("KnightKing edges/step")]
        # Full-scan costs orders of magnitude more than KnightKing.
        assert min(full) > 10 * max(kk)
        assert max(kk) < 2.0


class TestTables34:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_speedups_positive(self, weighted):
        table = tables34.run(weighted=weighted, scale=0.12)
        assert len(table.rows) == 16
        speedups = [
            float(value.rstrip("*")) for value in table.column("speedup")
        ]
        assert all(s > 1.0 for s in speedups)

    def test_dynamic_beats_static_gap(self):
        table = tables34.run(weighted=False, scale=0.12)
        by_algo = {}
        for row in table.rows:
            by_algo.setdefault(row[0], []).append(float(row[4].rstrip("*")))
        assert max(by_algo["node2vec"]) > max(by_algo["DeepWalk"])


class TestTable5:
    def test_5a_lower_bound_reduces_evals(self):
        table = table5.run_5a(scale=0.2, walk_length=10, walker_fraction=0.3)
        evals = [float(v) for v in table.column("edges/step")]
        # Rows alternate naive / lower-bound per setting.
        for naive, lower in zip(evals[::2], evals[1::2]):
            assert lower <= naive
        # p=q=1 with lower bound: exactly zero evaluations.
        assert evals[5] == 0.0

    def test_5b_combined_best(self):
        table = table5.run_5b(scale=0.2, walk_length=10, walker_fraction=0.3)
        evals = {row[0]: float(row[2]) for row in table.rows}
        assert evals["L+O"] < evals["naive"]
        assert evals["O"] < evals["naive"]
        assert evals["L"] < evals["naive"]


class TestFigures:
    def test_fig5_tail_longer_than_bfs(self):
        bfs_sizes, walk_active = fig5.tail_series(scale=0.15, seed=0)
        assert len(walk_active) > 5 * len(bfs_sizes)
        table = fig5.run(scale=0.15)
        assert "BFS active" in table.columns

    def test_fig6a_linear_vs_flat(self):
        table = fig6.run_6a(
            degrees=(8, 32), num_vertices=2000, walk_length=8, num_walkers=150
        )
        full = [float(v) for v in table.column("full-scan edges/step")]
        kk = [float(v) for v in table.column("KnightKing edges/step")]
        assert full[1] > 3 * full[0]  # grows with degree
        assert abs(kk[1] - kk[0]) < 0.3  # roughly constant

    def test_fig6b_skew_sensitivity(self):
        table = fig6.run_6b(
            max_degrees=(20, 320),
            num_vertices=3000,
            walk_length=8,
            num_walkers=150,
        )
        full = [float(v) for v in table.column("full-scan edges/step")]
        means = [float(v) for v in table.column("mean degree")]
        # Full-scan cost grows faster than the mean degree.
        assert full[1] / full[0] > 1.5 * (means[1] / means[0])

    def test_fig6c_hotspots(self):
        table = fig6.run_6c(
            hotspot_counts=(0, 4),
            num_vertices=3000,
            base_degree=10,
            walk_length=8,
            num_walkers=150,
        )
        full = [float(v) for v in table.column("full-scan edges/step")]
        kk = [float(v) for v in table.column("KnightKing edges/step")]
        assert full[1] > 3 * full[0]
        assert abs(kk[1] - kk[0]) < 0.3

    def test_fig7_scaling(self):
        knightking, gemini = fig7.scaling_series(
            node_counts=(1, 4), scale=0.1, walk_length=10, gemini_fraction=0.2
        )
        assert knightking[1] < knightking[0]
        assert gemini[1] < gemini[0]
        assert gemini[0] > knightking[0]

    def test_fig8_mixed_grows(self):
        rows = fig8.decoupling_series(
            max_weights=(2.0, 16.0),
            distribution="power-law",
            scale=0.15,
            walk_length=8,
            walker_fraction=0.3,
        )
        assert rows[1][3] > rows[0][3]  # mixed trials grow
        assert rows[1][4] < 1.5 * rows[0][4]  # decoupled roughly flat

    def test_fig8_bad_distribution(self):
        with pytest.raises(ValueError):
            fig8.decoupling_series(distribution="gaussian", scale=0.15)

    def test_fig9_light_mode_helps_ppr(self):
        baseline, light = fig9.straggler_pair(
            "livejournal", "ppr", scale=0.15
        )
        assert light < baseline

    def test_fig9_bad_algorithm(self):
        with pytest.raises(ValueError):
            fig9.straggler_pair("livejournal", "bfs", scale=0.15)

    def test_memory_table(self):
        table = memory.run()
        assert len(table.rows) == 2
        assert "TB" in table.rows[0][1]

    def test_navigation_rates_smoke(self):
        from repro.bench import navrate

        rates = navrate.navigation_rates(
            scale=0.15, walk_length=8, walker_fraction=0.05
        )
        assert set(rates) == {
            "BFS",
            "full-scan node2vec",
            "KnightKing node2vec",
        }
        assert all(rate > 0 for rate in rates.values())
        assert rates["KnightKing node2vec"] > rates["full-scan node2vec"]
