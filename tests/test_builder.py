"""Unit tests for graph builders and weight assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.builder import (
    GraphBuilder,
    WEIGHT_HIGH,
    WEIGHT_LOW,
    assign_power_law_weights,
    assign_random_weights,
    from_arrays,
    from_edges,
)
from repro.graph.generators import uniform_degree_graph


class TestGraphBuilder:
    def test_directed_build(self):
        graph = (
            GraphBuilder(3)
            .add_edge(0, 1)
            .add_edge(0, 2, weight=2.0)
            .add_edge(2, 1)
            .build()
        )
        assert graph.num_edges == 3
        assert graph.is_weighted  # any explicit weight makes it weighted
        assert graph.weight_of_edge(graph.edge_index(0, 2)) == 2.0
        assert graph.weight_of_edge(graph.edge_index(0, 1)) == 1.0

    def test_undirected_doubling(self):
        builder = GraphBuilder(3, undirected=True)
        builder.add_edge(0, 1, weight=3.0)
        assert builder.num_added_edges == 1
        graph = builder.build()
        assert graph.num_edges == 2
        assert graph.is_undirected
        assert graph.weight_of_edge(graph.edge_index(1, 0)) == 3.0
        graph.validate()

    def test_edge_types(self):
        graph = GraphBuilder(2).add_edge(0, 1, edge_type=4).build()
        assert graph.is_heterogeneous
        assert graph.edge_types_of(0).tolist() == [4]

    def test_vertex_types(self):
        graph = (
            GraphBuilder(2).add_edge(0, 1).set_vertex_types([1, 0]).build()
        )
        assert graph.vertex_types.tolist() == [1, 0]

    def test_vertex_types_wrong_size(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).set_vertex_types([1])

    def test_vertex_out_of_range(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(0, 2)
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(-1, 0)

    def test_negative_weight(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(0, 1, weight=-0.5)

    def test_zero_vertices(self):
        with pytest.raises(GraphError):
            GraphBuilder(0)

    def test_add_edges_tuples(self):
        graph = GraphBuilder(3).add_edges([(0, 1), (1, 2, 2.5)]).build()
        assert graph.num_edges == 2
        assert graph.weight_of_edge(graph.edge_index(1, 2)) == 2.5

    def test_add_edges_bad_tuple(self):
        with pytest.raises(GraphError):
            GraphBuilder(3).add_edges([(0, 1, 2.0, 3)])


class TestFromArrays:
    def test_matches_builder(self):
        edges = [(0, 2), (2, 1), (0, 1), (1, 0)]
        via_builder = from_edges(3, edges)
        via_arrays = from_arrays(
            3,
            np.array([e[0] for e in edges]),
            np.array([e[1] for e in edges]),
        )
        assert via_builder == via_arrays

    def test_undirected_matches_builder(self):
        builder = GraphBuilder(4, undirected=True)
        for u, v, w in [(0, 1, 2.0), (1, 3, 5.0)]:
            builder.add_edge(u, v, weight=w)
        via_arrays = from_arrays(
            4,
            np.array([0, 1]),
            np.array([1, 3]),
            weights=np.array([2.0, 5.0]),
            undirected=True,
        )
        assert builder.build() == via_arrays

    def test_endpoint_validation(self):
        with pytest.raises(GraphError):
            from_arrays(2, np.array([0]), np.array([2]))

    def test_misaligned_weights(self):
        with pytest.raises(GraphError):
            from_arrays(
                2, np.array([0]), np.array([1]), weights=np.array([1.0, 2.0])
            )

    def test_misaligned_arrays(self):
        with pytest.raises(GraphError):
            from_arrays(2, np.array([0, 1]), np.array([1]))


class TestRandomWeights:
    def test_range(self):
        graph = uniform_degree_graph(50, 4, seed=0)
        weighted = assign_random_weights(graph, seed=1)
        assert weighted.is_weighted
        assert weighted.weights.min() >= WEIGHT_LOW
        assert weighted.weights.max() < WEIGHT_HIGH

    def test_undirected_mirroring(self):
        graph = uniform_degree_graph(50, 4, seed=0, undirected=True)
        weighted = assign_random_weights(graph, seed=1)
        for vertex in range(weighted.num_vertices):
            start, end = weighted.edge_range(vertex)
            for index in range(start, end):
                target = int(weighted.targets[index])
                reverse = weighted.edge_index(target, vertex)
                assert weighted.weights[index] == pytest.approx(
                    weighted.weights[reverse]
                )

    def test_deterministic(self):
        graph = uniform_degree_graph(30, 3, seed=0)
        first = assign_random_weights(graph, seed=7)
        second = assign_random_weights(graph, seed=7)
        np.testing.assert_array_equal(first.weights, second.weights)
        third = assign_random_weights(graph, seed=8)
        assert not np.array_equal(first.weights, third.weights)

    def test_structure_preserved(self):
        graph = uniform_degree_graph(30, 3, seed=0, undirected=True)
        weighted = assign_random_weights(graph, seed=1)
        np.testing.assert_array_equal(graph.offsets, weighted.offsets)
        np.testing.assert_array_equal(graph.targets, weighted.targets)
        assert weighted.is_undirected


class TestPowerLawWeights:
    def test_range_and_mirroring(self):
        graph = uniform_degree_graph(40, 4, seed=2, undirected=True)
        weighted = assign_power_law_weights(graph, seed=3, max_weight=16.0)
        assert weighted.weights.min() >= 1.0
        assert weighted.weights.max() <= 16.0
        target = int(weighted.targets[0])
        reverse = weighted.edge_index(target, 0)
        assert weighted.weights[0] == pytest.approx(weighted.weights[reverse])

    def test_heavier_tail_than_uniform(self):
        graph = uniform_degree_graph(200, 8, seed=2)
        power = assign_power_law_weights(
            graph, seed=3, max_weight=32.0, exponent=2.0
        )
        # Power-law weights concentrate near the minimum.
        assert np.median(power.weights) < 4.0

    def test_exponent_one_special_case(self):
        graph = uniform_degree_graph(40, 4, seed=2)
        weighted = assign_power_law_weights(
            graph, seed=3, max_weight=8.0, exponent=1.0
        )
        assert weighted.weights.min() >= 1.0
        assert weighted.weights.max() <= 8.0

    def test_invalid_bounds(self):
        graph = uniform_degree_graph(10, 2, seed=0)
        with pytest.raises(GraphError):
            assign_power_law_weights(graph, seed=0, max_weight=0.5)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_weight_assignment_mirrors_for_any_seed(seed):
    graph = uniform_degree_graph(20, 3, seed=1, undirected=True)
    weighted = assign_random_weights(graph, seed=seed)
    index = graph.num_edges // 2
    sources = np.repeat(np.arange(20), graph.out_degrees())
    source, target = int(sources[index]), int(weighted.targets[index])
    reverse = weighted.edge_index(target, source)
    assert weighted.weights[index] == pytest.approx(weighted.weights[reverse])
