"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.analysis import load_corpus
from repro.cli import build_parser, main
from repro.graph.generators import uniform_degree_graph
from repro.graph.io import save_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_walk_defaults(self):
        args = build_parser().parse_args(
            ["walk", "--dataset", "livejournal"]
        )
        assert args.algorithm == "deepwalk"
        assert args.length == 80
        assert args.nodes == 0

    def test_graph_source_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["info", "--dataset", "twitter", "--edge-list", "x.txt"]
            )


class TestInfo:
    def test_dataset_info(self, capsys):
        code = main(["info", "--dataset", "livejournal", "--scale", "0.1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "degree mean" in output
        assert "p99" in output

    def test_edge_list_info(self, capsys, tmp_path):
        graph = uniform_degree_graph(30, 3, seed=0)
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(["info", "--edge-list", str(path)]) == 0
        assert "|V|=30" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["info", "--edge-list", "/nonexistent/file"]) == 1
        assert "error" in capsys.readouterr().err


class TestWalk:
    def test_local_walk(self, capsys):
        code = main(
            [
                "walk",
                "--dataset",
                "livejournal",
                "--scale",
                "0.1",
                "--algorithm",
                "uniform",
                "--walkers",
                "50",
                "--length",
                "5",
            ]
        )
        assert code == 0
        assert "steps=250" in capsys.readouterr().out

    def test_distributed_walk(self, capsys):
        code = main(
            [
                "walk",
                "--dataset",
                "twitter",
                "--scale",
                "0.1",
                "--algorithm",
                "node2vec",
                "--walkers",
                "40",
                "--length",
                "5",
                "--nodes",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "supersteps" in output
        assert "messages" in output

    @pytest.mark.parametrize("algorithm", ["ppr", "metapath", "rwr", "deepwalk"])
    def test_all_algorithms_run(self, capsys, algorithm):
        code = main(
            [
                "walk",
                "--dataset",
                "livejournal",
                "--scale",
                "0.1",
                "--algorithm",
                algorithm,
                "--walkers",
                "30",
                "--length",
                "5",
            ]
        )
        assert code == 0

    def test_corpus_output(self, capsys, tmp_path):
        corpus_path = tmp_path / "walks.txt"
        code = main(
            [
                "walk",
                "--dataset",
                "livejournal",
                "--scale",
                "0.1",
                "--algorithm",
                "deepwalk",
                "--walkers",
                "20",
                "--length",
                "6",
                "--output",
                str(corpus_path),
            ]
        )
        assert code == 0
        walks = load_corpus(corpus_path)
        assert len(walks) == 20
        assert all(len(walk) == 7 for walk in walks)


class TestBench:
    def test_memory_experiment(self, capsys):
        assert main(["bench", "memory"]) == 0
        output = capsys.readouterr().out
        assert "970 TB" in output or "TB" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "table99"])
