"""Tests for the cluster simulator: network, scheduler, cost model."""

import numpy as np
import pytest

from repro.cluster.cost_model import CostModel, NodeWork
from repro.cluster.network import MessageKind, Network
from repro.cluster.scheduler import (
    LIGHT_MODE_THREADS,
    LIGHT_MODE_THRESHOLD,
    ThreadPolicy,
)
from repro.errors import ClusterError


class TestNetwork:
    def test_record_batch_counts_remote_only_in_matrix(self):
        network = Network(3)
        crossed = network.record_batch(
            MessageKind.WALKER_MIGRATE,
            np.array([0, 1, 2, 0]),
            np.array([1, 1, 0, 2]),
        )
        assert crossed == 3  # one message was 1 -> 1 (local)
        matrix = network.matrix(MessageKind.WALKER_MIGRATE)
        assert matrix[0, 1] == 1
        assert matrix[2, 0] == 1
        assert matrix[0, 2] == 1
        assert network.local_deliveries(MessageKind.WALKER_MIGRATE) == 1

    def test_total_bytes(self):
        network = Network(2)
        network.record_batch(
            MessageKind.STATE_QUERY, np.array([0]), np.array([1])
        )
        network.record_batch(
            MessageKind.QUERY_RESPONSE, np.array([1]), np.array([0])
        )
        expected = (
            MessageKind.STATE_QUERY.bytes_per_message
            + MessageKind.QUERY_RESPONSE.bytes_per_message
        )
        assert network.total_bytes() == expected

    def test_scatter_messages(self):
        network = Network(4)
        total = network.record_scatter(
            MessageKind.WALKER_MIGRATE, np.array([0, 1]), np.array([3, 2])
        )
        assert total == 5
        assert network.total_messages() == 5
        assert network.sent_by_node().tolist() == [3, 2, 0, 0]
        # Scatters are sender-only: the pairwise matrix stays empty.
        assert network.matrix().sum() == 0

    def test_sent_received_by_node(self):
        network = Network(2)
        network.record_batch(
            MessageKind.STATE_QUERY, np.array([0, 0]), np.array([1, 1])
        )
        assert network.sent_by_node().tolist() == [2, 0]
        assert network.received_by_node().tolist() == [0, 2]

    def test_errors(self):
        with pytest.raises(ClusterError):
            Network(0)
        network = Network(2)
        with pytest.raises(ClusterError):
            network.record_batch(
                MessageKind.STATE_QUERY, np.array([0]), np.array([0, 1])
            )
        with pytest.raises(ClusterError):
            network.record_scatter(
                MessageKind.STATE_QUERY, np.array([0]), np.array([-1])
            )

    def test_record_batch_rejects_out_of_range_nodes(self):
        network = Network(3)
        with pytest.raises(ClusterError, match=r"\[0, 3\)"):
            network.record_batch(
                MessageKind.WALKER_MIGRATE, np.array([0, 3]), np.array([1, 2])
            )
        with pytest.raises(ClusterError, match=r"\[0, 3\)"):
            network.record_batch(
                MessageKind.WALKER_MIGRATE, np.array([0, 1]), np.array([1, -1])
            )
        # Nothing was recorded by the rejected batches.
        assert network.total_messages() == 0
        assert network.local_deliveries() == 0

    def test_record_batch_empty_is_fine(self):
        network = Network(2)
        crossed = network.record_batch(
            MessageKind.STATE_QUERY, np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        )
        assert crossed == 0


class TestThreadPolicy:
    def test_paper_defaults(self):
        policy = ThreadPolicy()
        assert policy.threads_for(LIGHT_MODE_THRESHOLD) == 18
        assert policy.threads_for(LIGHT_MODE_THRESHOLD - 1) == LIGHT_MODE_THREADS
        assert policy.threads_for(0) == LIGHT_MODE_THREADS

    def test_light_mode_disabled(self):
        policy = ThreadPolicy(light_mode=False)
        assert policy.threads_for(0) == 18

    def test_custom_threshold(self):
        policy = ThreadPolicy(threshold=10)
        assert policy.threads_for(10) == 18
        assert policy.threads_for(9) == 3

    def test_errors(self):
        with pytest.raises(ClusterError):
            ThreadPolicy(full_threads=2)
        with pytest.raises(ClusterError):
            ThreadPolicy(threshold=-1)


class TestCostModel:
    def test_node_time_components(self):
        model = CostModel(
            trial_cost=1.0,
            pd_cost=10.0,
            message_cost=100.0,
            thread_overhead=0.5,
            barrier_cost=0.25,
            comm_threads=2,
        )
        work = NodeWork(trials=4, pd_evaluations=2, messages=6)
        # threads=4 -> 2 compute threads: (4*1 + 2*10)/2 + 6*100/2
        expected = 4 * 0.5 + 0.25 + (4 + 20) / 2 + 600 / 2
        assert model.node_time(work, threads=4) == pytest.approx(expected)

    def test_more_threads_speed_up_compute(self):
        model = CostModel()
        work = NodeWork(trials=100_000, pd_evaluations=100_000, messages=0)
        assert model.node_time(work, 18) < model.node_time(work, 3)

    def test_few_walkers_favor_light_mode(self):
        model = CostModel()
        idle = NodeWork(trials=10, pd_evaluations=5, messages=5)
        assert model.node_time(idle, 3) < model.node_time(idle, 18)

    def test_superstep_is_max_over_nodes(self):
        model = CostModel()
        light = NodeWork(trials=1, pd_evaluations=0, messages=0)
        heavy = NodeWork(trials=1_000_000, pd_evaluations=0, messages=0)
        superstep = model.superstep_time([light, heavy], [18, 18])
        assert superstep == pytest.approx(model.node_time(heavy, 18))

    def test_node_work_merge(self):
        merged = NodeWork(trials=1, pd_evaluations=2, messages=3, active_walkers=4).merged(
            NodeWork(trials=10, pd_evaluations=20, messages=30, active_walkers=2)
        )
        assert merged.trials == 11
        assert merged.pd_evaluations == 22
        assert merged.messages == 33
        assert merged.active_walkers == 4
