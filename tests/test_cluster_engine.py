"""Integration tests for the distributed walk engine."""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, MetaPathWalk, Node2Vec, PPR, UniformWalk
from repro.cluster import (
    CostModel,
    DistributedWalkEngine,
    MessageKind,
    ThreadPolicy,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types

from tests.helpers import diamond_graph, exact_node2vec_law


@pytest.fixture
def graph():
    return uniform_degree_graph(160, 6, seed=0, undirected=True)


class TestExecution:
    def test_walks_complete(self, graph):
        config = WalkConfig(num_walkers=50, max_steps=12, record_paths=True)
        result = DistributedWalkEngine(
            graph, UniformWalk(), config, num_nodes=4
        ).run()
        assert all(len(path) == 13 for path in result.paths)
        for path in result.paths:
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_supersteps_equal_iterations(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=5)
        result = DistributedWalkEngine(
            graph, UniformWalk(), config, num_nodes=4
        ).run()
        assert result.cluster.num_supersteps == result.stats.iterations
        assert result.cluster.simulated_seconds == pytest.approx(
            sum(result.cluster.superstep_times)
        )

    def test_single_node_no_remote_messages(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=5)
        result = DistributedWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_nodes=1
        ).run()
        assert result.cluster.network.total_messages() == 0
        # Local deliveries still happen (and are charged in the model).
        assert result.cluster.network.local_deliveries() > 0

    def test_distribution_matches_local_engine(self):
        graph = diamond_graph()
        config = WalkConfig(
            num_walkers=10_000,
            max_steps=2,
            record_paths=True,
            seed=8,
            start_vertices=np.zeros(10_000, dtype=np.int64),
        )
        program = Node2Vec(p=0.5, q=2.0, biased=False)
        distributed = DistributedWalkEngine(
            graph, program, config, num_nodes=3
        ).run()
        local = WalkEngine(graph, program, config).run()
        dist_hist = np.bincount(
            [int(p[-1]) for p in distributed.paths if len(p) == 3], minlength=4
        )
        local_hist = np.bincount(
            [int(p[-1]) for p in local.paths if len(p) == 3], minlength=4
        )
        total = dist_hist.sum()
        assert np.abs(dist_hist / total - local_hist / local_hist.sum()).max() < 0.03


class TestMessageAccounting:
    def test_static_walk_sends_no_queries(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=10)
        result = DistributedWalkEngine(
            graph, DeepWalk(), config, num_nodes=4
        ).run()
        network = result.cluster.network
        assert network.total_messages(MessageKind.STATE_QUERY) == 0
        assert network.total_messages(MessageKind.QUERY_RESPONSE) == 0
        assert network.total_messages(MessageKind.WALKER_MIGRATE) > 0

    def test_first_order_dynamic_sends_no_queries(self, graph):
        typed = assign_random_edge_types(graph, 3, seed=1)
        config = WalkConfig(num_walkers=40, max_steps=8)
        result = DistributedWalkEngine(
            typed, MetaPathWalk([[0, 1, 2]]), config, num_nodes=4
        ).run()
        assert result.cluster.network.total_messages(MessageKind.STATE_QUERY) == 0

    def test_second_order_sends_query_pairs(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=10)
        result = DistributedWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_nodes=4
        ).run()
        network = result.cluster.network
        queries = network.total_messages(MessageKind.STATE_QUERY)
        responses = network.total_messages(MessageKind.QUERY_RESPONSE)
        assert queries > 0
        assert queries == responses

    def test_lower_bound_cuts_queries(self, graph):
        """Pre-acceptance saves remote state queries (paper section 4.2)."""
        config = WalkConfig(num_walkers=60, max_steps=10, seed=2)
        program_args = dict(p=2.0, q=0.5, biased=False)
        with_lb = DistributedWalkEngine(
            graph, Node2Vec(**program_args), config, num_nodes=4
        ).run()
        without_lb = DistributedWalkEngine(
            graph,
            Node2Vec(**program_args),
            config,
            num_nodes=4,
            use_lower_bound=False,
        ).run()
        assert with_lb.cluster.network.total_messages(
            MessageKind.STATE_QUERY
        ) < without_lb.cluster.network.total_messages(MessageKind.STATE_QUERY)

    def test_migrations_match_ownership_changes(self):
        graph = diamond_graph()
        config = WalkConfig(
            num_walkers=500, max_steps=3, record_paths=True, seed=3
        )
        engine = DistributedWalkEngine(graph, UniformWalk(), config, num_nodes=2)
        result = engine.run()
        crossings = 0
        for path in result.paths:
            owners = engine.partition.owners(path)
            crossings += int(np.count_nonzero(owners[:-1] != owners[1:]))
        assert (
            result.cluster.network.total_messages(MessageKind.WALKER_MIGRATE)
            == crossings
        )


class TestSchedulingAndCost:
    def test_light_mode_reduces_simulated_time_on_long_tail(self, graph):
        config = WalkConfig(
            num_walkers=graph.num_vertices,
            max_steps=None,
            termination_probability=0.15,
            seed=4,
        )
        times = {}
        for light in (False, True):
            engine = DistributedWalkEngine(
                graph,
                PPR(),
                config,
                num_nodes=4,
                thread_policy=ThreadPolicy(light_mode=light, threshold=20),
            )
            result = engine.run()
            times[light] = result.cluster.simulated_seconds
        assert times[True] < times[False]

    def test_light_mode_counter(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=3)
        result = DistributedWalkEngine(
            graph,
            UniformWalk(),
            config,
            num_nodes=2,
            thread_policy=ThreadPolicy(threshold=1000),
        ).run()
        assert result.cluster.light_mode_node_supersteps > 0

    def test_custom_cost_model_scales_time(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=5, seed=5)
        cheap = DistributedWalkEngine(
            graph,
            UniformWalk(),
            config,
            num_nodes=2,
            cost_model=CostModel(),
        ).run()
        expensive = DistributedWalkEngine(
            graph,
            UniformWalk(),
            config,
            num_nodes=2,
            cost_model=CostModel(
                trial_cost=8e-5, message_cost=5e-4, thread_overhead=4e-3
            ),
        ).run()
        assert (
            expensive.cluster.simulated_seconds
            > 100 * cheap.cluster.simulated_seconds
        )

    def test_per_node_load_accounting(self, graph):
        config = WalkConfig(num_walkers=graph.num_vertices, max_steps=10, seed=6)
        result = DistributedWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_nodes=4
        ).run()
        cluster = result.cluster
        # Per-node trial totals sum to the global counter.
        assert int(cluster.trials_per_node.sum()) == result.stats.counters.trials
        assert (
            int(cluster.pd_evaluations_per_node.sum())
            == result.stats.counters.pd_evaluations
            + result.stats.full_scan_evaluations
        )
        # Walker-supersteps sum equals the per-iteration active series.
        assert int(cluster.walker_supersteps_per_node.sum()) == sum(
            result.stats.active_per_iteration
        )
        # Uniform-ish graph, |V| walkers: load is reasonably balanced.
        assert cluster.compute_balance() < 1.5

    def test_more_nodes_spread_work(self):
        big = uniform_degree_graph(2000, 8, seed=6, undirected=True)
        config = WalkConfig(num_walkers=2000, max_steps=20, seed=7)
        times = {}
        for nodes in (1, 8):
            result = DistributedWalkEngine(
                big,
                Node2Vec(p=2, q=0.5, biased=False),
                config,
                num_nodes=nodes,
                thread_policy=ThreadPolicy(light_mode=False),
            ).run()
            times[nodes] = result.cluster.simulated_seconds
        assert times[8] < times[1]
