"""Unit tests for walk configuration."""

import numpy as np
import pytest

from repro.core.config import DEFAULT_WALK_LENGTH, WalkConfig
from repro.errors import ConfigError

from tests.helpers import diamond_graph


class TestValidation:
    def test_defaults(self):
        config = WalkConfig()
        assert config.max_steps == DEFAULT_WALK_LENGTH == 80
        assert config.termination_probability == 0.0

    def test_bad_walker_count(self):
        with pytest.raises(ConfigError):
            WalkConfig(num_walkers=0)

    def test_bad_max_steps(self):
        with pytest.raises(ConfigError):
            WalkConfig(max_steps=-1)

    def test_bad_termination_probability(self):
        with pytest.raises(ConfigError):
            WalkConfig(termination_probability=1.5)
        with pytest.raises(ConfigError):
            WalkConfig(termination_probability=-0.1)

    def test_unbounded_walk_rejected(self):
        with pytest.raises(ConfigError):
            WalkConfig(max_steps=None, termination_probability=0.0)

    def test_unbounded_with_termination_allowed(self):
        WalkConfig(max_steps=None, termination_probability=0.1)

    def test_bad_sampler_name(self):
        with pytest.raises(ConfigError):
            WalkConfig(static_sampler="magic")


class TestResolution:
    def test_default_walker_count_is_num_vertices(self):
        graph = diamond_graph()
        assert WalkConfig().resolve_num_walkers(graph) == 4

    def test_default_starts_round_robin(self):
        """Paper: the i-th walker starts at vertex i mod |V|."""
        graph = diamond_graph()
        starts = WalkConfig(num_walkers=10).resolve_starts(graph)
        assert starts.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_explicit_starts(self):
        graph = diamond_graph()
        starts = WalkConfig(
            num_walkers=3, start_vertices=np.array([2, 2, 0])
        ).resolve_starts(graph)
        assert starts.tolist() == [2, 2, 0]

    def test_explicit_starts_wrong_count(self):
        graph = diamond_graph()
        with pytest.raises(ConfigError):
            WalkConfig(
                num_walkers=2, start_vertices=np.array([0])
            ).resolve_starts(graph)

    def test_explicit_starts_out_of_range(self):
        graph = diamond_graph()
        with pytest.raises(ConfigError):
            WalkConfig(
                num_walkers=1, start_vertices=np.array([9])
            ).resolve_starts(graph)


class TestWalksPerVertex:
    def test_resolves_to_gamma_times_v(self):
        graph = diamond_graph()
        config = WalkConfig(walks_per_vertex=3, max_steps=5)
        assert config.resolve_num_walkers(graph) == 12
        starts = config.resolve_starts(graph)
        # Round-robin default: exactly gamma starts per vertex.
        assert np.bincount(starts, minlength=4).tolist() == [3, 3, 3, 3]

    def test_mutually_exclusive_with_num_walkers(self):
        with pytest.raises(ConfigError):
            WalkConfig(num_walkers=5, walks_per_vertex=2)

    def test_must_be_positive(self):
        with pytest.raises(ConfigError):
            WalkConfig(walks_per_vertex=0)

    def test_deepwalk_config_helper(self):
        from repro.algorithms import deepwalk_config

        graph = diamond_graph()
        config = deepwalk_config(walks_per_vertex=10, walk_length=7)
        assert config.resolve_num_walkers(graph) == 40
        assert config.max_steps == 7


class TestStartDistribution:
    def test_sampled_from_weights(self):
        graph = diamond_graph()
        config = WalkConfig(
            num_walkers=8000,
            start_distribution=np.array([0.0, 0.5, 0.5, 0.0]),
            seed=1,
        )
        starts = config.resolve_starts(graph)
        counts = np.bincount(starts, minlength=4)
        assert counts[0] == 0 and counts[3] == 0
        assert abs(counts[1] - counts[2]) < 500

    def test_deterministic_per_seed(self):
        graph = diamond_graph()
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        first = WalkConfig(
            num_walkers=100, start_distribution=weights, seed=5
        ).resolve_starts(graph)
        second = WalkConfig(
            num_walkers=100, start_distribution=weights, seed=5
        ).resolve_starts(graph)
        np.testing.assert_array_equal(first, second)

    def test_mutually_exclusive_with_explicit_starts(self):
        with pytest.raises(ConfigError):
            WalkConfig(
                num_walkers=1,
                start_vertices=np.array([0]),
                start_distribution=np.ones(4),
            )

    def test_wrong_size(self):
        graph = diamond_graph()
        with pytest.raises(ConfigError):
            WalkConfig(
                num_walkers=1, start_distribution=np.ones(3)
            ).resolve_starts(graph)

    def test_invalid_weights(self):
        graph = diamond_graph()
        with pytest.raises(ConfigError):
            WalkConfig(
                num_walkers=1, start_distribution=np.array([-1.0, 1, 1, 1])
            ).resolve_starts(graph)
        with pytest.raises(ConfigError):
            WalkConfig(
                num_walkers=1, start_distribution=np.zeros(4)
            ).resolve_starts(graph)

    def test_engine_uses_distribution(self):
        from repro.algorithms import UniformWalk
        from repro.core.engine import WalkEngine

        graph = diamond_graph()
        config = WalkConfig(
            num_walkers=200,
            max_steps=1,
            record_paths=True,
            start_distribution=np.array([1.0, 0.0, 0.0, 0.0]),
            seed=2,
        )
        result = WalkEngine(graph, UniformWalk(), config).run()
        assert all(path[0] == 0 for path in result.paths)
