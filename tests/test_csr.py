"""Unit tests for CSR graph storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.builder import from_arrays, from_edges
from repro.graph.csr import CSRGraph

from tests.helpers import diamond_graph


class TestConstruction:
    def test_minimal_graph(self):
        graph = from_edges(2, [(0, 1)])
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert list(graph.neighbors(0)) == [1]
        assert list(graph.neighbors(1)) == []

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_offsets_must_match_edge_count(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_target_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_weights_must_align(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]), weights=np.array([1.0, 2.0]))

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]), weights=np.array([-1.0]))

    def test_edge_types_must_align(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]), np.array([0]), edge_types=np.array([1, 2])
            )

    def test_vertex_types_must_cover_vertices(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]), np.array([0]), vertex_types=np.array([1, 2])
            )

    def test_arrays_are_read_only(self):
        graph = diamond_graph()
        with pytest.raises(ValueError):
            graph.targets[0] = 3  # lint: disable=RK105 -- proves immutability
        with pytest.raises(ValueError):
            graph.offsets[0] = 1  # lint: disable=RK105 -- proves immutability


class TestAccessors:
    def test_degrees(self):
        graph = diamond_graph()
        assert graph.out_degree(0) == 2
        assert graph.out_degree(1) == 3
        assert list(graph.out_degrees()) == [2, 3, 3, 2]
        assert graph.max_out_degree() == 3

    def test_neighbors_sorted(self):
        graph = diamond_graph()
        for vertex in range(graph.num_vertices):
            neighbors = graph.neighbors(vertex)
            assert list(neighbors) == sorted(neighbors)

    def test_edge_range(self):
        graph = diamond_graph()
        start, end = graph.edge_range(1)
        assert end - start == 3
        assert set(graph.targets[start:end]) == {0, 2, 3}

    def test_edge_weights_default_ones(self):
        graph = diamond_graph()
        assert not graph.is_weighted
        np.testing.assert_array_equal(graph.edge_weights(1), np.ones(3))
        assert graph.weight_of_edge(0) == 1.0
        assert graph.total_out_weight(1) == 3.0

    def test_edge_weights_explicit(self):
        graph = diamond_graph(weights=True)
        assert graph.is_weighted
        assert graph.total_out_weight(0) == pytest.approx(
            float(graph.edge_weights(0).sum())
        )

    def test_edge_types_of_requires_types(self):
        with pytest.raises(GraphError):
            diamond_graph().edge_types_of(0)

    def test_degree_stats(self):
        graph = diamond_graph()
        stats = graph.degree_stats()
        assert stats.mean == pytest.approx(2.5)
        assert stats.min == 2
        assert stats.max == 3
        assert "mean" in str(stats)

    def test_degree_stats_empty_vertexes(self):
        graph = from_edges(3, [(0, 1)])
        stats = graph.degree_stats()
        assert stats.min == 0


class TestMembership:
    def test_has_edge(self):
        graph = diamond_graph()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 3)
        assert not graph.has_edge(0, 0)

    def test_edge_index_roundtrip(self):
        graph = diamond_graph()
        for vertex in range(graph.num_vertices):
            for target in graph.neighbors(vertex):
                index = graph.edge_index(vertex, int(target))
                assert graph.targets[index] == target
        assert graph.edge_index(0, 3) == -1

    def test_has_edges_batch_matches_scalar(self):
        graph = diamond_graph()
        sources, targets = np.meshgrid(np.arange(4), np.arange(4), indexing="ij")
        sources, targets = sources.ravel(), targets.ravel()
        batch = graph.has_edges_batch(sources, targets)
        scalar = [graph.has_edge(int(s), int(t)) for s, t in zip(sources, targets)]
        np.testing.assert_array_equal(batch, scalar)

    def test_has_edges_batch_empty(self):
        graph = diamond_graph()
        result = graph.has_edges_batch(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert result.size == 0

    def test_has_edges_batch_shape_mismatch(self):
        graph = diamond_graph()
        with pytest.raises(GraphError):
            graph.has_edges_batch(np.array([0]), np.array([0, 1]))

    def test_edge_span_batch_parallel_edges(self):
        graph = from_edges(3, [(0, 1), (0, 1), (0, 2)])
        first, counts = graph.edge_span_batch(
            np.array([0, 0, 1]), np.array([1, 2, 0])
        )
        assert counts.tolist() == [2, 1, 0]
        assert first[0] >= 0 and graph.targets[first[0]] == 1
        assert first[2] == -1


class TestValidateAndEquality:
    def test_validate_passes(self):
        diamond_graph().validate()

    def test_validate_detects_missing_reverse(self):
        # Hand-build a graph flagged undirected but missing a reverse edge.
        graph = CSRGraph(
            np.array([0, 1, 1]), np.array([1]), undirected=True
        )
        with pytest.raises(GraphError):
            graph.validate()

    def test_equality(self):
        assert diamond_graph() == diamond_graph()
        assert diamond_graph() != diamond_graph(weights=True)
        assert diamond_graph() != from_edges(4, [(0, 1)])
        assert diamond_graph().__eq__(42) is NotImplemented

    def test_repr(self):
        text = repr(diamond_graph(weights=True))
        assert "|V|=4" in text and "weighted" in text


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        min_size=1,
        max_size=60,
    )
)
def test_csr_matches_adjacency_oracle(edges):
    """CSR construction agrees with a dict-of-lists oracle."""
    graph = from_arrays(
        10,
        np.array([e[0] for e in edges], dtype=np.int64),
        np.array([e[1] for e in edges], dtype=np.int64),
    )
    oracle: dict[int, list[int]] = {v: [] for v in range(10)}
    for source, target in edges:
        oracle[source].append(target)
    assert graph.num_edges == len(edges)
    for vertex in range(10):
        assert sorted(oracle[vertex]) == list(graph.neighbors(vertex))
        for target in range(10):
            assert graph.has_edge(vertex, target) == (target in oracle[vertex])
