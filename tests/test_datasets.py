"""Tests for the dataset stand-ins (Table 2 substitution)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.datasets import (
    DATASETS,
    friendster_like,
    livejournal_like,
    load_dataset,
    twitter_like,
    ukunion_like,
)


def overhead_ratio(graph):
    """Visit-weighted scan cost over mean degree: Sum(d^2)/Sum(d)/mean.

    This is the quantity Table 1 turns on — the expected full-scan cost
    per step of a degree-proportional walk, relative to the mean.
    """
    degrees = graph.out_degrees().astype(float)
    return (degrees**2).sum() / degrees.sum() / degrees.mean()


class TestProfiles:
    def test_all_are_undirected(self):
        for name in DATASETS:
            graph = load_dataset(name, scale=0.1)
            assert graph.is_undirected

    def test_skew_ordering_matches_table2(self):
        """Twitter/UK-Union far more skewed than LiveJournal/Friendster."""
        ratios = {
            "livejournal": overhead_ratio(livejournal_like(scale=0.5)),
            "friendster": overhead_ratio(friendster_like(scale=0.5)),
            "twitter": overhead_ratio(twitter_like(scale=0.5)),
            "ukunion": overhead_ratio(ukunion_like(scale=0.5)),
        }
        assert ratios["livejournal"] < ratios["friendster"]
        assert ratios["friendster"] < ratios["ukunion"]
        assert ratios["friendster"] < ratios["twitter"]
        assert ratios["twitter"] > 5 * ratios["friendster"]

    def test_size_ordering(self):
        """UK-Union is the biggest graph, LiveJournal the smallest."""
        sizes = {
            name: load_dataset(name, scale=0.2).num_vertices
            for name in DATASETS
        }
        assert sizes["livejournal"] < sizes["ukunion"]
        assert sizes["friendster"] < sizes["ukunion"]

    def test_twitter_has_celebrity_hubs(self):
        graph = twitter_like(scale=0.5)
        assert graph.max_out_degree() > graph.num_vertices // 4

    def test_scale_knob(self):
        small = friendster_like(scale=0.1)
        large = friendster_like(scale=0.3)
        assert large.num_vertices == pytest.approx(
            3 * small.num_vertices, rel=0.01
        )

    def test_scale_too_small(self):
        with pytest.raises(GraphError):
            livejournal_like(scale=1e-4)


class TestLoading:
    def test_weighted_variant(self):
        graph = load_dataset("twitter", scale=0.1, weighted=True)
        assert graph.is_weighted
        assert graph.weights.min() >= 1.0
        assert graph.weights.max() < 5.0

    def test_case_insensitive(self):
        assert load_dataset("LiveJournal", scale=0.1) == load_dataset(
            "livejournal", scale=0.1
        )

    def test_unknown_name(self):
        with pytest.raises(GraphError):
            load_dataset("orkut")

    def test_deterministic(self):
        assert twitter_like(scale=0.1) == twitter_like(scale=0.1)
        assert twitter_like(scale=0.1, seed=1) != twitter_like(
            scale=0.1, seed=2
        )

    def test_custom_seed_passthrough(self):
        custom = load_dataset("friendster", scale=0.1, seed=99)
        default = load_dataset("friendster", scale=0.1)
        assert custom != default
