"""Tests for the static algorithms: DeepWalk and PPR."""

import numpy as np
import pytest

from repro.algorithms import (
    DEFAULT_TERMINATION,
    DeepWalk,
    PPR,
    build_corpus,
    deepwalk_config,
    estimate_ppr,
    ppr_config,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.generators import uniform_degree_graph

from tests.helpers import two_triangle_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(120, 5, seed=0, undirected=True)


class TestDeepWalk:
    def test_config_defaults(self):
        config = deepwalk_config()
        assert config.max_steps == 80
        assert config.termination_probability == 0.0

    def test_corpus_shapes(self, graph):
        config = deepwalk_config(num_walkers=30, walk_length=12, record_paths=True)
        result = WalkEngine(graph, DeepWalk(), config).run()
        corpus = build_corpus(result)
        assert len(corpus) == 30
        assert all(len(sentence) == 13 for sentence in corpus)

    def test_weighted_bias_on_graph_weights(self):
        graph = from_edges(3, [(0, 1, 1.0), (0, 2, 4.0)])
        config = WalkConfig(
            num_walkers=6000,
            max_steps=1,
            record_paths=True,
            start_vertices=np.zeros(6000, dtype=np.int64),
        )
        result = WalkEngine(graph, DeepWalk(), config).run()
        finals = np.array([p[-1] for p in result.paths])
        assert (finals == 2).sum() / (finals == 1).sum() == pytest.approx(
            4.0, rel=0.2
        )

    def test_every_walker_finishes_full_length(self, graph):
        config = deepwalk_config(num_walkers=50, walk_length=20)
        result = WalkEngine(graph, DeepWalk(), config).run()
        assert np.all(result.walk_lengths == 20)


class TestPPRConfig:
    def test_defaults(self):
        config = ppr_config()
        assert config.max_steps is None
        assert config.termination_probability == DEFAULT_TERMINATION

    def test_expected_length_matches_termination(self, graph):
        config = ppr_config(num_walkers=4000, seed=1)
        result = WalkEngine(graph, PPR(), config).run()
        # Pt = 1/80 -> expected 79 moves (coin before each move).
        assert result.walk_lengths.mean() == pytest.approx(79.0, rel=0.08)

    def test_length_distribution_has_long_tail(self, graph):
        config = ppr_config(num_walkers=4000, seed=2)
        result = WalkEngine(graph, PPR(), config).run()
        lengths = result.walk_lengths
        # Geometric: some walks far beyond the mean (paper: >1000 seen).
        assert lengths.max() > 3 * lengths.mean()

    def test_max_steps_cap_possible(self, graph):
        config = ppr_config(num_walkers=100, max_steps=10, seed=3)
        result = WalkEngine(graph, PPR(), config).run()
        assert result.walk_lengths.max() <= 10


class TestPPREstimation:
    def test_estimate_is_probability_vector(self):
        graph = two_triangle_graph()
        config = WalkConfig(
            num_walkers=2000,
            max_steps=None,
            termination_probability=0.2,
            record_paths=True,
            seed=4,
            start_vertices=np.zeros(2000, dtype=np.int64),
        )
        result = WalkEngine(graph, PPR(), config).run()
        estimate = estimate_ppr(result, source=0, num_vertices=5)
        assert estimate.sum() == pytest.approx(1.0)
        assert np.all(estimate >= 0)

    def test_estimate_matches_power_iteration(self):
        """Monte-Carlo PPR tracks the exact personalized PageRank."""
        graph = two_triangle_graph()
        alpha = 0.2  # termination probability = teleport probability

        # Exact PPR via power iteration on the visit distribution of
        # the same process: start at 0, each step continue w.p. 1-alpha.
        transition = np.zeros((5, 5))
        for vertex in range(5):
            neighbors = graph.neighbors(vertex)
            transition[vertex, neighbors] = 1.0 / neighbors.size
        # Expected visit counts: sum_k (1-alpha)^k P^k, normalised.
        visits = np.zeros(5)
        state = np.zeros(5)
        state[0] = 1.0
        for _ in range(400):
            visits += state
            state = (1 - alpha) * state @ transition
        exact = visits / visits.sum()

        config = WalkConfig(
            num_walkers=20_000,
            max_steps=None,
            termination_probability=alpha,
            record_paths=True,
            seed=5,
            start_vertices=np.zeros(20_000, dtype=np.int64),
        )
        result = WalkEngine(graph, PPR(), config).run()
        estimate = estimate_ppr(result, source=0, num_vertices=5)
        np.testing.assert_allclose(estimate, exact, atol=0.01)

    def test_estimate_requires_paths(self, graph):
        config = ppr_config(num_walkers=10, termination_probability=0.5)
        result = WalkEngine(graph, PPR(), config).run()
        with pytest.raises(ValueError):
            estimate_ppr(result, 0, graph.num_vertices)

    def test_weighted_ppr_biases_visits(self):
        graph = from_edges(3, [(0, 1, 9.0), (0, 2, 1.0), (1, 0, 1.0), (2, 0, 1.0)])
        config = WalkConfig(
            num_walkers=8000,
            max_steps=None,
            termination_probability=0.5,
            record_paths=True,
            seed=6,
            start_vertices=np.zeros(8000, dtype=np.int64),
        )
        result = WalkEngine(graph, PPR(), config).run()
        estimate = estimate_ppr(result, source=0, num_vertices=3)
        assert estimate[1] > 3 * estimate[2]
