"""Dynamic graphs: epochs, WAL recovery, incremental sampler upkeep.

The load-bearing test here is the seed-swept property test: a random
sequence of insert/delete/reweight epochs (with compaction interleaved)
must leave the dynamic graph *bit-identical* to a from-scratch
:func:`~repro.graph.builder.from_arrays` build of the surviving edge
list — CSR arrays, alias tables, ITS tables, and Q(v)/L(v) bound
arrays alike.  Everything else (epoch pinning in both engine modes,
the cluster simulator, the service, checkpoints, the sanitizer's
per-epoch certification) rides on that equivalence.
"""

import bisect

import numpy as np
import pytest

from repro.algorithms import DeepWalk, Node2Vec, UniformWalk
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.snapshot import (
    checkpoint_epoch,
    restore_checkpoint,
    save_checkpoint,
)
from repro.errors import GraphError, ServiceError, SnapshotError, WalError
from repro.graph.builder import assign_random_weights, from_arrays, from_edges
from repro.graph.dynamic import (
    DynamicGraph,
    EdgeUpdate,
    UpdateBatch,
    generate_churn_batches,
    parse_update_stream,
)
from repro.graph.generators import erdos_renyi_graph
from repro.lint.sanitizer import run_sanitized
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables
from repro.service import WalkRequest, WalkService


def small_graph(seed=3, num_vertices=40, weighted=True):
    graph = erdos_renyi_graph(num_vertices, 5.0, seed=seed)
    return assign_random_weights(graph, seed=seed + 1) if weighted else graph


def edge_list(graph):
    """The graph's edges as a CSR-ordered [(s, t, w), ...] list."""
    degrees = np.diff(graph.offsets)
    sources = np.repeat(np.arange(graph.num_vertices), degrees)
    weights = (
        graph.weights
        if graph.weights is not None
        else np.ones(graph.num_edges)
    )
    return [
        (int(s), int(t), float(w))
        for s, t, w in zip(sources, graph.targets, weights)
    ]


# ----------------------------------------------------------------------
# Update batches and the update-stream grammar
# ----------------------------------------------------------------------
class TestUpdateBatch:
    def test_roundtrip(self):
        updates = [
            EdgeUpdate("insert", 0, 1, 2.5),
            EdgeUpdate("delete", 3, 4),
            EdgeUpdate("reweight", 5, 6, 0.25, edge_type=2),
        ]
        batch = UpdateBatch.from_updates(updates)
        assert len(batch) == 3
        restored = UpdateBatch.from_bytes(batch.to_bytes())
        assert list(restored.updates()) == updates

    def test_bad_kind_rejected(self):
        with pytest.raises(GraphError):
            EdgeUpdate("frobnicate", 0, 1)

    def test_truncated_blob_rejected(self):
        blob = UpdateBatch.from_updates([EdgeUpdate("insert", 0, 1)]).to_bytes()
        with pytest.raises(WalError):
            UpdateBatch.from_bytes(blob[:-3])

    def test_parse_update_stream(self):
        lines = [
            "# comment",
            "insert 0 1 2.0",
            "delete 2 3",
            "commit",
            "reweight 4 5 0.5",
            "commit",
        ]
        batches = parse_update_stream(lines)
        assert [len(b) for b in batches] == [2, 1]
        assert batches[0].updates()[0] == EdgeUpdate("insert", 0, 1, 2.0)

    def test_parse_update_stream_bad_line(self):
        with pytest.raises(GraphError, match="line 2"):
            parse_update_stream(["insert 0 1", "frobnicate 1 2"])


# ----------------------------------------------------------------------
# Commit semantics
# ----------------------------------------------------------------------
class TestCommit:
    def test_insert_visible_in_next_snapshot(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1), (1, 2)]))
        before = dyn.snapshot()
        assert dyn.commit([EdgeUpdate("insert", 0, 3)]) == 1
        after = dyn.snapshot()
        assert not before.graph.has_edge(0, 3)  # snapshot isolation
        assert after.graph.has_edge(0, 3)
        assert after.epoch == before.epoch + 1

    def test_delete_missing_edge_is_atomic(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1), (1, 2)]))
        batch = [EdgeUpdate("insert", 0, 2), EdgeUpdate("delete", 2, 3)]
        with pytest.raises(GraphError, match="delete of missing edge"):
            dyn.commit(batch)
        # Staging failed before anything was installed: no partial epoch.
        assert dyn.epoch == 0
        assert not dyn.snapshot().graph.has_edge(0, 2)

    def test_reweight_missing_edge_raises(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1)]))
        with pytest.raises(GraphError, match="reweight of missing edge"):
            dyn.commit([EdgeUpdate("reweight", 1, 0, 2.0)])

    def test_endpoint_out_of_range(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1)]))
        with pytest.raises(GraphError):
            dyn.commit([EdgeUpdate("insert", 0, 4)])

    def test_bad_weight_rejected(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1)]))
        with pytest.raises(GraphError):
            dyn.commit([EdgeUpdate("insert", 0, 2, float("nan"))])
        with pytest.raises(GraphError):
            dyn.commit([EdgeUpdate("insert", 0, 2, -1.0)])

    def test_undirected_mirrors_both_directions(self):
        base = from_edges(4, [(0, 1), (1, 2)], undirected=True)
        dyn = DynamicGraph(base)
        dyn.commit([EdgeUpdate("insert", 0, 3, 2.5)])
        graph = dyn.snapshot().graph
        assert graph.has_edge(0, 3) and graph.has_edge(3, 0)
        dyn.commit([EdgeUpdate("delete", 3, 0)])
        graph = dyn.snapshot().graph
        assert not graph.has_edge(0, 3) and not graph.has_edge(3, 0)

    def test_stats_conservation(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1), (1, 2)]))
        dyn.commit([EdgeUpdate("insert", 0, 2), EdgeUpdate("reweight", 0, 1, 3.0)])
        dyn.commit([EdgeUpdate("delete", 1, 2)])
        stats = dyn.stats
        assert stats.epochs_committed == 2
        assert stats.updates_submitted == 3
        assert stats.inserts_applied == 1
        assert stats.deletes_applied == 1
        assert stats.reweights_applied == 1
        assert stats.conservation_balanced()

    def test_snapshot_at_retention_window(self):
        dyn = DynamicGraph(from_edges(4, [(0, 1)]), retain_epochs=2)
        for _ in range(4):
            dyn.commit([EdgeUpdate("reweight", 0, 1, 2.0)])
            dyn.snapshot()  # materialize so the epoch enters retention
        assert dyn.snapshot_at(4).epoch == 4
        assert dyn.snapshot_at(3).epoch == 3
        with pytest.raises(GraphError, match="replay_to"):
            dyn.snapshot_at(1)


# ----------------------------------------------------------------------
# Property test: epochs + compaction == from-scratch build
# ----------------------------------------------------------------------
def assert_tables_identical(ours, reference):
    """Exact (bit-level) equality of two sampler-table objects."""
    assert type(ours) is type(reference)
    compared = 0
    for attr in ("_prob", "_alias", "_totals", "_cdf", "_base",
                 "_running", "_static"):
        mine = getattr(ours, attr, None)
        theirs = getattr(reference, attr, None)
        assert (mine is None) == (theirs is None), attr
        if mine is not None:
            np.testing.assert_array_equal(mine, theirs, err_msg=attr)
            compared += 1
    assert compared >= 2  # the helper must actually compare something


class _ModelGraph:
    """Sorted-edge-list oracle mirroring DynamicGraph's semantics."""

    def __init__(self, graph):
        self.num_vertices = graph.num_vertices
        self.edges = edge_list(graph)
        self.keys = [(s, t) for s, t, _ in self.edges]

    def apply(self, update):
        key = (update.source, update.target)
        if update.kind == "insert":
            # After equal keys: matches the builder's stable lexsort.
            pos = bisect.bisect_right(self.keys, key)
            self.keys.insert(pos, key)
            self.edges.insert(pos, (*key, update.weight))
        else:
            pos = bisect.bisect_left(self.keys, key)
            if pos == len(self.keys) or self.keys[pos] != key:
                raise AssertionError(f"model missing edge {key}")
            if update.kind == "delete":
                del self.keys[pos], self.edges[pos]
            else:
                self.edges[pos] = (*key, update.weight)

    def build(self):
        sources = np.array([e[0] for e in self.edges], dtype=np.int64)
        targets = np.array([e[1] for e in self.edges], dtype=np.int64)
        weights = np.array([e[2] for e in self.edges], dtype=np.float64)
        return from_arrays(self.num_vertices, sources, targets, weights)

    def random_update(self, rng):
        roll = rng.random()
        if roll < 0.4 or not self.edges:
            source = int(rng.integers(self.num_vertices))
            target = int(rng.integers(self.num_vertices))
            return EdgeUpdate(
                "insert", source, target, float(rng.uniform(0.5, 4.0))
            )
        source, target, _ = self.edges[int(rng.integers(len(self.edges)))]
        if roll < 0.7:
            return EdgeUpdate("delete", source, target)
        return EdgeUpdate(
            "reweight", source, target, float(rng.uniform(0.5, 4.0))
        )


class _DegreeBoundWalk(UniformWalk):
    """Exercises the scalar-hook bound-maintenance path: no
    ``upper_bound_array`` override, degree-dependent Q(v)."""

    def dynamic_upper_bound(self, graph, vertex):
        return 1.0 + 0.25 * graph.out_degree(vertex)

    def dynamic_lower_bound(self, graph, vertex):
        return 0.5 if graph.out_degree(vertex) else 0.0


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_epochs_match_from_scratch_build(seed):
    rng = np.random.default_rng(seed)
    base = small_graph(seed=seed)
    model = _ModelGraph(base)
    dyn = DynamicGraph(base, verify="full", seed=seed)
    program = _DegreeBoundWalk()

    for epoch in range(1, 7):
        updates = []
        for _ in range(int(rng.integers(1, 12))):
            update = model.random_update(rng)
            model.apply(update)
            updates.append(update)
        assert dyn.commit(updates) == epoch

        snap = dyn.snapshot()
        reference = model.build()
        assert snap.graph == reference
        np.testing.assert_array_equal(snap.graph.weights, reference.weights)
        assert_tables_identical(snap.tables("alias"), VertexAliasTables(reference))
        assert_tables_identical(snap.tables("its"), VertexITSTables(reference))
        upper, lower = snap.bounds_for(program)
        np.testing.assert_array_equal(upper, program.upper_bound_array(reference))
        np.testing.assert_array_equal(lower, program.lower_bound_array(reference))

        if epoch % 3 == 0:
            dyn.compact()  # folding must not perturb anything
            assert dyn.snapshot().graph == reference

    # verify="full" probed every vertex of every epoch without one miss.
    assert dyn.maintenance.verify_checks > 0
    assert dyn.maintenance.verify_mismatches == 0
    assert dyn.maintenance.epochs_maintained > 0
    assert dyn.stats.conservation_balanced()


def test_incremental_tables_match_full_rebuild():
    dyn = DynamicGraph(small_graph(seed=9))
    dyn.commit([EdgeUpdate("insert", 0, 5, 2.0), EdgeUpdate("insert", 7, 3, 1.5)])
    snap = dyn.snapshot()
    assert_tables_identical(snap.tables("alias"), VertexAliasTables(snap.graph))
    assert_tables_identical(snap.tables("its"), VertexITSTables(snap.graph))
    # The second epoch reuses the first's tables incrementally.
    dyn.commit([EdgeUpdate("delete", 0, 5)])
    snap = dyn.snapshot()
    assert_tables_identical(snap.tables("alias"), VertexAliasTables(snap.graph))
    assert dyn.maintenance.epochs_maintained >= 1
    assert dyn.maintenance.vertices_copied > 0


def test_verification_fallback_on_corruption():
    dyn = DynamicGraph(small_graph(seed=11), verify="full", seed=1)
    dyn.commit([EdgeUpdate("insert", 1, 2, 3.0)])
    dyn.snapshot().tables("alias")  # prime the cache
    dyn._test_corrupt_incremental = True
    dyn.commit([EdgeUpdate("insert", 2, 3, 2.0)])
    snap = dyn.snapshot()
    tables = snap.tables("alias")
    # The corrupted incremental build was detected and discarded; the
    # served tables still match a from-scratch rebuild exactly.
    assert_tables_identical(tables, VertexAliasTables(snap.graph))
    assert dyn.maintenance.verify_mismatches >= 1
    assert dyn.maintenance.verify_fallbacks >= 1


# ----------------------------------------------------------------------
# WAL recovery and durable compaction
# ----------------------------------------------------------------------
class TestWalRecovery:
    def test_recover_replays_all_epochs(self, tmp_path):
        wal = tmp_path / "graph.wal"
        base = small_graph(seed=5)
        dyn = DynamicGraph(base, wal_path=wal)
        rng = np.random.default_rng(0)
        model = _ModelGraph(base)
        for _ in range(3):
            updates = [model.random_update(rng) for _ in range(4)]
            for update in updates:
                model.apply(update)
            dyn.commit(updates)
        expected = dyn.snapshot().graph
        dyn.close()

        recovered = DynamicGraph.recover(base, wal)
        assert recovered.epoch == 3
        assert recovered.snapshot().graph == expected
        assert recovered.stats.recovery is not None
        assert recovered.stats.recovery.balanced()

    def test_recover_replay_to_partial(self, tmp_path):
        wal = tmp_path / "graph.wal"
        base = from_edges(4, [(0, 1)])
        dyn = DynamicGraph(base, wal_path=wal)
        dyn.commit([EdgeUpdate("insert", 1, 2)])
        dyn.commit([EdgeUpdate("insert", 2, 3)])
        dyn.close()
        partial = DynamicGraph.recover(base, wal, replay_to=1)
        assert partial.epoch == 1
        graph = partial.snapshot().graph
        assert graph.has_edge(1, 2) and not graph.has_edge(2, 3)

    def test_save_compacted_roundtrip(self, tmp_path):
        wal = tmp_path / "graph.wal"
        npz = tmp_path / "base.npz"
        base = small_graph(seed=6)
        dyn = DynamicGraph(base, wal_path=wal)
        dyn.commit([EdgeUpdate("insert", 0, 1, 2.0)])
        dyn.commit([EdgeUpdate("insert", 1, 0, 3.0)])
        expected = dyn.snapshot().graph
        dyn.save_compacted(npz)
        dyn.commit([EdgeUpdate("delete", 0, 1)])
        final = dyn.snapshot().graph
        dyn.close()

        loaded = DynamicGraph.load_compacted(npz, wal)
        assert loaded.epoch == 3
        assert loaded.snapshot().graph == final
        assert expected.has_edge(0, 1)  # pre-compaction view unaffected


# ----------------------------------------------------------------------
# Epoch pinning through the engine stack
# ----------------------------------------------------------------------
class TestEnginePinning:
    @pytest.mark.parametrize("engine_mode", ["step", "walker"])
    def test_engine_pins_snapshot(self, engine_mode):
        dyn = DynamicGraph(small_graph(seed=7))
        dyn.commit([EdgeUpdate("insert", 0, 1, 2.0)])
        config = WalkConfig(
            num_walkers=30, max_steps=8, record_paths=True, seed=4,
            engine_mode=engine_mode,
        )
        engine = WalkEngine(dyn, DeepWalk(), config)
        assert engine.graph_epoch == 1
        # Commits after construction must not affect the pinned walk.
        dyn.commit([EdgeUpdate("delete", 0, 1)])
        result = engine.run()
        assert result.stats.graph_epoch == 1

        static = WalkEngine(dyn.snapshot_at(1).graph, DeepWalk(), config)
        np.testing.assert_array_equal(result.paths, static.run().paths)

    def test_engine_on_snapshot_matches_materialized(self):
        dyn = DynamicGraph(small_graph(seed=8))
        dyn.commit([EdgeUpdate("insert", 2, 3, 4.0)])
        snap = dyn.snapshot()
        config = WalkConfig(
            num_walkers=25, max_steps=6, record_paths=True, seed=9
        )
        from_snap = WalkEngine(snap, Node2Vec(p=2.0, q=0.5), config).run()
        from_csr = WalkEngine(snap.graph, Node2Vec(p=2.0, q=0.5), config).run()
        np.testing.assert_array_equal(from_snap.paths, from_csr.paths)
        assert from_snap.stats.graph_epoch == 1
        assert from_csr.stats.graph_epoch is None

    def test_distributed_engine_pins_epoch(self):
        base = erdos_renyi_graph(60, 5.0, seed=2, undirected=True)
        dyn = DynamicGraph(base)
        dyn.commit([EdgeUpdate("insert", 0, 59, 2.0)])
        config = WalkConfig(
            num_walkers=40, max_steps=6, record_paths=True, seed=3
        )
        engine = DistributedWalkEngine(dyn, UniformWalk(), config, num_nodes=2)
        result = engine.run()
        assert result.stats.graph_epoch == 1
        single = WalkEngine(dyn.snapshot_at(1).graph, UniformWalk(), config)
        np.testing.assert_array_equal(result.paths, single.run().paths)


# ----------------------------------------------------------------------
# Checkpoints carry the epoch
# ----------------------------------------------------------------------
class TestCheckpointEpoch:
    def _setup(self):
        dyn = DynamicGraph(small_graph(seed=10))
        dyn.commit([EdgeUpdate("insert", 0, 2, 2.0)])
        dyn.commit([EdgeUpdate("reweight", 0, 2, 1.5)])
        config = WalkConfig(
            num_walkers=20, max_steps=10, record_paths=True, seed=1
        )
        return dyn, UniformWalk(), config

    def test_checkpoint_records_epoch(self, tmp_path):
        dyn, program, config = self._setup()
        engine = WalkEngine(dyn, program, config)
        engine.run(max_iterations=2)
        path = tmp_path / "walk.npz"
        save_checkpoint(engine, path)
        assert checkpoint_epoch(path) == 2

        restored = restore_checkpoint(dyn, program, config, path)
        finished = restored.run()
        reference = WalkEngine(dyn, program, config).run()
        for resumed_path, straight_path in zip(
            finished.paths, reference.paths
        ):
            np.testing.assert_array_equal(resumed_path, straight_path)

    def test_restore_rejects_wrong_epoch(self, tmp_path):
        dyn, program, config = self._setup()
        engine = WalkEngine(dyn, program, config)
        engine.run(max_iterations=2)
        path = tmp_path / "walk.npz"
        save_checkpoint(engine, path)
        dyn.commit([EdgeUpdate("delete", 0, 2)])
        with pytest.raises(SnapshotError, match="replay_to=2"):
            restore_checkpoint(dyn, program, config, path)

    def test_static_checkpoint_has_no_epoch(self, tmp_path):
        graph = small_graph(seed=10)
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=2)
        path = tmp_path / "walk.npz"
        save_checkpoint(engine, path)
        assert checkpoint_epoch(path) is None


# ----------------------------------------------------------------------
# Service: updates interleaved with requests
# ----------------------------------------------------------------------
class TestServiceUpdates:
    def test_apply_updates_advances_served_epoch(self):
        dyn = DynamicGraph(small_graph(seed=12))
        config = WalkConfig(num_walkers=10, max_steps=5, seed=2)
        with WalkService(dyn, num_workers=1) as service:
            first = service.submit(
                WalkRequest(program=UniformWalk(), config=config)
            ).result(timeout=30)
            assert first.ok and first.graph_epoch == 0

            epoch = service.apply_updates([EdgeUpdate("insert", 0, 3, 2.0)])
            assert epoch == 1
            second = service.submit(
                WalkRequest(program=UniformWalk(), config=config)
            ).result(timeout=30)
            assert second.ok and second.graph_epoch == 1
            assert service.metrics.updates_applied == 1
            assert service.metrics.epochs_committed == 1

    def test_apply_updates_requires_dynamic_graph(self):
        with WalkService(small_graph(seed=12), num_workers=1) as service:
            with pytest.raises(ServiceError):
                service.apply_updates([EdgeUpdate("insert", 0, 1)])


# ----------------------------------------------------------------------
# Sanitizer: per-epoch replay certification
# ----------------------------------------------------------------------
def test_sanitizer_certifies_per_epoch_replay():
    base = small_graph(seed=13)
    batches = generate_churn_batches(base, num_epochs=2, updates_per_epoch=15, seed=4)
    config = WalkConfig(num_walkers=20, max_steps=6, seed=5)

    def factory_for(epoch):
        def factory():
            dyn = DynamicGraph(base, seed=5)
            for batch in batches[:epoch]:
                dyn.commit(batch)
            return WalkEngine(dyn, UniformWalk(), config)
        return factory

    for epoch in range(1, len(batches) + 1):
        report = run_sanitized(factory_for(epoch), runs=2)
        assert report.deterministic, report.summary()


def test_generate_churn_batches_replayable():
    base = small_graph(seed=14)
    batches = generate_churn_batches(base, num_epochs=3, updates_per_epoch=10, seed=6)
    assert len(batches) == 3
    first = DynamicGraph(base)
    second = DynamicGraph(base)
    for batch in batches:
        first.commit(batch)
        second.commit(batch)
    assert first.snapshot().graph == second.snapshot().graph
    assert first.stats.conservation_balanced()
