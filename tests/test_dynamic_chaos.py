"""Chaos tests for the dynamic-graph plane: crashes around the WAL.

Two kill points matter for the durability story:

* **mid-WAL-append** — the process dies with a torn record at the tail
  of the log.  Recovery must land on the *last committed* epoch, report
  the torn bytes (``WalRecoveryReport.balanced()`` is the conservation
  law: scanned == intact + truncated), repair the tail, and keep
  accepting commits.
* **mid-compaction** — the process dies after the compacted base is
  durably on disk but before the WAL is truncated.  Reloading must not
  double-apply the already-folded records.

The CI chaos matrix runs this file as the ``churn`` profile
(``REPRO_CHAOS_PROFILE=churn``) under several ``REPRO_CHAOS_SEED``
values to widen the sampled update streams; locally a small default
seed set keeps the sweep fast.
"""

import os

import numpy as np
import pytest

from repro.algorithms import UniformWalk
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.dynamic import DynamicGraph, generate_churn_batches
from repro.graph.generators import erdos_renyi_graph
from repro.graph.wal import _InjectedCrash

# CI widens coverage by re-running the sweep under extra seeds.
CHAOS_SEEDS = (
    [int(os.environ["REPRO_CHAOS_SEED"])]
    if os.environ.get("REPRO_CHAOS_SEED")
    else [1, 2]
)

CHAOS_PROFILE = os.environ.get("REPRO_CHAOS_PROFILE", "churn")

# The dedicated churn profile commits more epochs per scenario.
NUM_EPOCHS = 6 if CHAOS_PROFILE == "churn" else 3


def churn_graph(seed):
    graph = erdos_renyi_graph(50, 5.0, seed=seed, undirected=True)
    return assign_random_weights(graph, seed=seed + 1)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("cut", [0, 1, 7, 8, 9, 20])
def test_kill_mid_wal_append(tmp_path, seed, cut):
    """Recovery after a torn append lands on the last committed epoch."""
    wal_path = tmp_path / "graph.wal"
    base = churn_graph(seed)
    batches = generate_churn_batches(
        base, num_epochs=NUM_EPOCHS + 1, updates_per_epoch=12, seed=seed
    )
    dyn = DynamicGraph(base, wal_path=wal_path)
    for batch in batches[:NUM_EPOCHS]:
        dyn.commit(batch)
    expected = dyn.snapshot().graph

    dyn.wal.inject_crash_after_bytes = cut
    with pytest.raises(_InjectedCrash):
        dyn.commit(batches[NUM_EPOCHS])
    # The in-process instance never installed the torn epoch either.
    assert dyn.epoch == NUM_EPOCHS
    dyn.close()

    recovered = DynamicGraph.recover(base, wal_path)
    assert recovered.epoch == NUM_EPOCHS
    assert recovered.snapshot().graph == expected
    report = recovered.stats.recovery
    assert report is not None and report.balanced()
    assert report.records_replayed == NUM_EPOCHS
    assert report.bytes_truncated == cut
    if cut:
        assert report.records_torn == 1
        assert report.torn_detail is not None

    # The tail was repaired in place: the log accepts further commits,
    # and a second recovery replays them without complaint.
    recovered.commit(batches[NUM_EPOCHS])
    final = recovered.snapshot().graph
    recovered.close()
    replayed = DynamicGraph.recover(base, wal_path)
    assert replayed.epoch == NUM_EPOCHS + 1
    assert replayed.snapshot().graph == final
    assert replayed.stats.recovery.bytes_truncated == 0


def test_torn_tail_every_byte_boundary(tmp_path):
    """Sweep the kill point across every byte of one WAL frame."""
    base = from_edges(6, [(0, 1), (1, 2), (2, 3)])
    first, second = generate_churn_batches(
        base, num_epochs=2, updates_per_epoch=3, seed=0
    )
    probe = DynamicGraph(base, wal_path=tmp_path / "probe.wal")
    probe.commit(first)
    durable_bytes = probe.wal.bytes_written
    probe.commit(second)
    frame_bytes = probe.wal.bytes_written - durable_bytes
    probe.close()

    for cut in range(frame_bytes):
        wal_path = tmp_path / f"cut{cut}.wal"
        dyn = DynamicGraph(base, wal_path=wal_path)
        dyn.commit(first)  # epoch 1: fully durable
        dyn.wal.inject_crash_after_bytes = cut
        with pytest.raises(_InjectedCrash):
            dyn.commit(second)
        dyn.close()

        recovered = DynamicGraph.recover(base, wal_path)
        report = recovered.stats.recovery
        assert recovered.epoch == 1, f"cut={cut}"
        assert report.balanced(), f"cut={cut}"
        assert report.bytes_truncated == cut, f"cut={cut}"
        recovered.close()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_kill_mid_compaction(tmp_path, seed):
    """A crash between base persist and WAL truncate never
    double-applies folded records."""
    wal_path = tmp_path / "graph.wal"
    npz_path = tmp_path / "base.npz"
    base = churn_graph(seed)
    batches = generate_churn_batches(
        base, num_epochs=NUM_EPOCHS, updates_per_epoch=10, seed=seed + 50
    )
    dyn = DynamicGraph(base, wal_path=wal_path)
    for batch in batches:
        dyn.commit(batch)
    expected = dyn.snapshot().graph

    dyn._test_crash_in_compaction = True
    with pytest.raises(_InjectedCrash):
        dyn.save_compacted(npz_path)
    dyn.close()

    # The compacted base is durable; the stale WAL still holds every
    # epoch.  Loading must skip the folded records, not re-apply them.
    loaded = DynamicGraph.load_compacted(npz_path, wal_path)
    assert loaded.epoch == NUM_EPOCHS
    assert loaded.snapshot().graph == expected
    assert loaded.stats.conservation_balanced()

    # And the loaded instance keeps working: next commit, next epoch.
    more = generate_churn_batches(
        expected, num_epochs=1, updates_per_epoch=5, seed=seed + 99
    )[0]
    loaded.commit(more)
    assert loaded.epoch == NUM_EPOCHS + 1
    loaded.close()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_walks_identical_after_crash_recovery(tmp_path, seed):
    """A walk on the recovered graph is bit-identical to a walk on the
    original at the same epoch — the straggler of a crash is invisible
    to the logical walk."""
    wal_path = tmp_path / "graph.wal"
    base = churn_graph(seed + 7)
    batches = generate_churn_batches(
        base, num_epochs=NUM_EPOCHS, updates_per_epoch=8, seed=seed + 7
    )
    dyn = DynamicGraph(base, wal_path=wal_path)
    for batch in batches:
        dyn.commit(batch)
    config = WalkConfig(
        num_walkers=40, max_steps=8, record_paths=True, seed=seed
    )
    original = WalkEngine(dyn, UniformWalk(), config).run()

    # A batch valid against the *current* edge set, so staging succeeds
    # and the injected crash fires inside the WAL append itself.
    extra = generate_churn_batches(
        dyn.snapshot().graph, num_epochs=1, updates_per_epoch=8,
        seed=seed + 123,
    )[0]
    dyn.wal.inject_crash_after_bytes = 3
    with pytest.raises(_InjectedCrash):
        dyn.commit(extra)
    dyn.close()

    recovered = DynamicGraph.recover(base, wal_path)
    rerun = WalkEngine(recovered, UniformWalk(), config).run()
    assert rerun.stats.graph_epoch == original.stats.graph_epoch
    for original_path, rerun_path in zip(original.paths, rerun.paths):
        np.testing.assert_array_equal(original_path, rerun_path)
    assert recovered.stats.conservation_balanced()
    recovered.close()
