"""Tests for the SGNS embedding substrate and link prediction."""

import numpy as np
import pytest

from repro.embedding import (
    SkipGramModel,
    cosine_scores,
    extract_training_pairs,
    link_prediction_auc,
    sample_edge_split,
)
from repro.errors import ReproError
from repro.graph.builder import from_arrays


class TestExtractTrainingPairs:
    def test_matches_generator(self):
        from repro.analysis import skipgram_pairs

        paths = [np.array([0, 1, 2, 3]), np.array([4, 5])]
        centers, contexts = extract_training_pairs(paths, window=2)
        vectorised = sorted(zip(centers.tolist(), contexts.tolist()))
        generated = sorted(skipgram_pairs(paths, window=2))
        assert vectorised == generated

    def test_empty_corpus(self):
        centers, contexts = extract_training_pairs([np.array([7])], window=2)
        assert centers.size == 0 and contexts.size == 0

    def test_invalid_window(self):
        with pytest.raises(ReproError):
            extract_training_pairs([np.array([0, 1])], window=0)


class TestSkipGramModel:
    def test_construction_validation(self):
        with pytest.raises(ReproError):
            SkipGramModel(1, 8)
        with pytest.raises(ReproError):
            SkipGramModel(10, 0)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        # Structured corpus (two vocabularies that never co-occur).
        paths = [rng.integers(0, 10, size=15) for _ in range(40)]
        paths += [10 + rng.integers(0, 10, size=15) for _ in range(40)]
        model = SkipGramModel(20, dimension=16, seed=1)
        first = model.train(paths, window=2, epochs=1)
        last = model.train(paths, window=2, epochs=10)
        assert last < first

    def test_empty_corpus_rejected(self):
        model = SkipGramModel(5, dimension=4)
        with pytest.raises(ReproError):
            model.train([np.array([0])], window=2)

    def test_cooccurring_vertices_become_similar(self):
        """Two disjoint cliques of walks: within-clique similarity must
        exceed cross-clique similarity after training."""
        rng = np.random.default_rng(2)
        paths = []
        for _ in range(150):
            paths.append(rng.integers(0, 5, size=12))  # community A: 0-4
            paths.append(rng.integers(5, 10, size=12))  # community B: 5-9
        model = SkipGramModel(10, dimension=12, seed=3)
        model.train(paths, window=3, epochs=8, learning_rate=0.05)
        within = model.similarity(0, 1)
        across = model.similarity(0, 7)
        assert within > across

    def test_most_similar_excludes_self(self):
        model = SkipGramModel(6, dimension=4, seed=4)
        neighbours = model.most_similar(2, top_k=3)
        assert len(neighbours) == 3
        assert all(v != 2 for v, _score in neighbours)


class TestLinkPrediction:
    def test_cosine_scores_shape(self):
        embeddings = np.eye(4)
        pairs = np.array([[0, 0], [0, 1]])
        scores = cosine_scores(embeddings, pairs)
        assert scores.tolist() == [1.0, 0.0]

    def test_auc_perfect_separation(self):
        embeddings = np.array([[1.0, 0.0], [1.0, 0.1], [-1.0, 0.0], [0.0, 1.0]])
        positives = np.array([[0, 1]])  # similar pair
        negatives = np.array([[0, 2]])  # opposite pair
        assert link_prediction_auc(embeddings, positives, negatives) == 1.0

    def test_auc_requires_pairs(self):
        with pytest.raises(ReproError):
            link_prediction_auc(np.eye(3), np.zeros((0, 2)), np.array([[0, 1]]))

    def test_sample_edge_split(self):
        graph = from_arrays(
            20,
            np.arange(19, dtype=np.int64),
            np.arange(1, 20, dtype=np.int64),
            undirected=True,
        )
        positives, negatives = sample_edge_split(graph, 15, seed=5)
        assert positives.shape == negatives.shape == (15, 2)
        for u, v in positives:
            assert graph.has_edge(int(u), int(v))
        for u, v in negatives:
            assert not graph.has_edge(int(u), int(v))

    def test_end_to_end_walks_to_auc(self):
        """Walks on a community graph produce embeddings whose link
        prediction beats coin flipping."""
        from repro.algorithms import DeepWalk
        from repro.core.config import WalkConfig
        from repro.core.engine import WalkEngine

        rng = np.random.default_rng(6)
        # Two communities of 15, sparse cross links.
        sources, targets = [], []
        for vertex in range(30):
            base = 0 if vertex < 15 else 15
            for _ in range(4):
                sources.append(vertex)
                targets.append(base + int(rng.integers(0, 15)))
        graph = from_arrays(
            30, np.asarray(sources), np.asarray(targets), undirected=True
        )
        config = WalkConfig(
            num_walkers=300, max_steps=15, record_paths=True, seed=7
        )
        result = WalkEngine(graph, DeepWalk(), config).run()
        model = SkipGramModel(30, dimension=16, seed=8)
        model.train(result.paths, window=3, epochs=20)
        positives, negatives = sample_edge_split(graph, 60, seed=9)
        auc = link_prediction_auc(model.embeddings, positives, negatives)
        assert auc > 0.75
