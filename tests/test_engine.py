"""Integration tests for the single-process walk engine."""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, MetaPathWalk, Node2Vec, PPR, UniformWalk
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ProgramError
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types

from tests.helpers import diamond_graph, two_triangle_graph


def assert_paths_valid(graph, paths):
    """Every consecutive path pair must be a stored edge."""
    for path in paths:
        for source, target in zip(path[:-1], path[1:]):
            assert graph.has_edge(int(source), int(target)), (
                f"walk used non-edge {source} -> {target}"
            )


@pytest.fixture
def graph():
    return uniform_degree_graph(200, 6, seed=0, undirected=True)


class TestBasicExecution:
    def test_fixed_length_walks(self, graph):
        config = WalkConfig(num_walkers=50, max_steps=15, record_paths=True)
        result = WalkEngine(graph, UniformWalk(), config).run()
        assert all(len(path) == 16 for path in result.paths)
        assert_paths_valid(graph, result.paths)
        assert result.stats.total_steps == 50 * 15
        assert result.stats.termination.by_step_limit == 50

    def test_default_walker_count_is_num_vertices(self, graph):
        result = WalkEngine(graph, UniformWalk(), WalkConfig(max_steps=2)).run()
        assert result.walkers.num_walkers == graph.num_vertices

    def test_deterministic_given_seed(self, graph):
        config = WalkConfig(num_walkers=20, max_steps=10, record_paths=True, seed=42)
        first = WalkEngine(graph, UniformWalk(), config).run()
        second = WalkEngine(graph, UniformWalk(), config).run()
        for a, b in zip(first.paths, second.paths):
            np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, graph):
        base = dict(num_walkers=20, max_steps=10, record_paths=True)
        first = WalkEngine(graph, UniformWalk(), WalkConfig(seed=1, **base)).run()
        second = WalkEngine(graph, UniformWalk(), WalkConfig(seed=2, **base)).run()
        assert any(
            not np.array_equal(a, b) for a, b in zip(first.paths, second.paths)
        )

    def test_corpus_requires_recording(self, graph):
        result = WalkEngine(
            graph, UniformWalk(), WalkConfig(num_walkers=5, max_steps=3)
        ).run()
        assert result.paths is None
        with pytest.raises(ProgramError):
            result.corpus()

    def test_its_sampler_option(self, graph):
        config = WalkConfig(
            num_walkers=30, max_steps=10, static_sampler="its", record_paths=True
        )
        result = WalkEngine(graph, DeepWalk(), config).run()
        assert_paths_valid(graph, result.paths)


class TestTermination:
    def test_geometric_termination_length(self, graph):
        probability = 0.2
        config = WalkConfig(
            num_walkers=3000,
            max_steps=None,
            termination_probability=probability,
            seed=3,
        )
        result = WalkEngine(graph, PPR(), config).run()
        # E[steps] = (1 - p) / p for a per-step stop coin before moving.
        expected = (1 - probability) / probability
        assert result.walk_lengths.mean() == pytest.approx(expected, rel=0.1)
        assert result.stats.termination.by_probability == 3000

    def test_dead_end_terminates_walk(self):
        graph = from_edges(3, [(0, 1), (1, 2)])  # 2 is a sink
        config = WalkConfig(num_walkers=4, max_steps=10, record_paths=True)
        result = WalkEngine(graph, UniformWalk(), config).run()
        assert result.stats.termination.by_dead_end >= 1
        # Walker starting at 0 deterministically reaches the sink.
        assert result.paths[0].tolist() == [0, 1, 2]

    def test_walker_starting_at_dead_end(self):
        graph = from_edges(2, [(0, 1)])
        config = WalkConfig(
            num_walkers=2, max_steps=5, record_paths=True
        )  # walker 1 starts at vertex 1 (sink)
        result = WalkEngine(graph, UniformWalk(), config).run()
        assert result.paths[1].tolist() == [1]

    def test_custom_should_continue(self, graph):
        class Homesick(UniformWalk):
            """Stops as soon as it lands on an even vertex."""

            def should_continue(self, graph, walker):
                return walker.step == 0 or walker.current % 2 == 1

        config = WalkConfig(num_walkers=40, max_steps=50, record_paths=True)
        result = WalkEngine(graph, Homesick(), config).run()
        for path in result.paths:
            if len(path) > 1:
                for vertex in path[1:-1]:
                    assert vertex % 2 == 1


class TestStatsConsistency:
    def test_counter_relationships(self, graph):
        config = WalkConfig(num_walkers=100, max_steps=20)
        engine = WalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config
        )
        stats = engine.run().stats
        counters = stats.counters
        assert counters.trials >= counters.accepts
        assert counters.accepts + 0 >= stats.total_steps - stats.full_scan_evaluations
        assert counters.pre_accepts + counters.pd_evaluations <= counters.trials + counters.appendix_trials
        assert stats.trials_per_step >= 1.0
        assert stats.iterations >= 20

    def test_static_walk_has_zero_pd_evaluations(self, graph):
        """Static programs morph into pure alias sampling."""
        config = WalkConfig(num_walkers=100, max_steps=20)
        stats = WalkEngine(graph, DeepWalk(), config).run().stats
        assert stats.counters.pd_evaluations == 0
        assert stats.pd_evaluations_per_step == 0.0
        assert stats.trials_per_step == pytest.approx(1.0)

    def test_active_per_iteration_monotone_for_fixed_length(self, graph):
        config = WalkConfig(num_walkers=50, max_steps=10)
        stats = WalkEngine(graph, UniformWalk(), config).run().stats
        actives = stats.active_per_iteration
        assert actives[0] == 50
        assert all(a >= b for a, b in zip(actives, actives[1:]))

    def test_summary_string(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=5)
        stats = WalkEngine(graph, UniformWalk(), config).run().stats
        assert "steps=" in stats.summary()


class TestScalarBatchAgreement:
    def test_node2vec_scalar_batch_same_law(self):
        graph = two_triangle_graph()
        law_counts = {}
        for force_scalar in (False, True):
            config = WalkConfig(
                num_walkers=4000,
                max_steps=2,
                record_paths=True,
                seed=11,
                start_vertices=np.full(4000, 1),
            )
            engine = WalkEngine(
                graph,
                Node2Vec(p=0.5, q=2.0, biased=False),
                config,
                force_scalar=force_scalar,
            )
            result = engine.run()
            finals = [int(path[-1]) for path in result.paths]
            law_counts[force_scalar] = np.bincount(finals, minlength=5)
        scalar, batch = law_counts[True], law_counts[False]
        # Same law: the two histograms agree within sampling noise.
        total = scalar.sum()
        assert np.abs(scalar / total - batch / total).max() < 0.04

    def test_metapath_scalar_batch_same_dead_end_behaviour(self):
        graph = assign_random_edge_types(
            uniform_degree_graph(100, 4, seed=1, undirected=True), 4, seed=2
        )
        schemes = [[0, 1], [2, 3]]
        outcomes = {}
        for force_scalar in (False, True):
            config = WalkConfig(num_walkers=200, max_steps=6, seed=5)
            result = WalkEngine(
                graph, MetaPathWalk(schemes), config, force_scalar=force_scalar
            ).run()
            outcomes[force_scalar] = result.stats.termination.by_dead_end
        # Both paths hit dead-ends at comparable rates.
        assert abs(outcomes[True] - outcomes[False]) < 60


class TestWeightedBias:
    def test_transition_frequencies_follow_weights(self):
        # Vertex 0 with two out-edges of weight 1 and 3.
        graph = from_edges(3, [(0, 1, 1.0), (0, 2, 3.0)])
        config = WalkConfig(
            num_walkers=8000,
            max_steps=1,
            record_paths=True,
            start_vertices=np.zeros(8000, dtype=np.int64),
        )
        result = WalkEngine(graph, DeepWalk(), config).run()
        finals = np.array([path[-1] for path in result.paths])
        ratio = (finals == 2).sum() / (finals == 1).sum()
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_uniform_walk_ignores_weights(self):
        graph = from_edges(3, [(0, 1, 1.0), (0, 2, 100.0)])
        config = WalkConfig(
            num_walkers=4000,
            max_steps=1,
            record_paths=True,
            start_vertices=np.zeros(4000, dtype=np.int64),
        )
        result = WalkEngine(graph, UniformWalk(), config).run()
        finals = np.array([path[-1] for path in result.paths])
        share = (finals == 2).mean()
        assert share == pytest.approx(0.5, abs=0.05)


class TestBoundValidation:
    def test_lower_above_upper_rejected(self, graph):
        class Broken(Node2Vec):
            def lower_bound_array(self, graph):
                return np.full(graph.num_vertices, 10.0)

        with pytest.raises(ProgramError):
            WalkEngine(graph, Broken(p=2, q=2), WalkConfig(num_walkers=2))

    def test_nonpositive_upper_rejected(self, graph):
        class Broken(Node2Vec):
            def upper_bound_array(self, graph):
                return np.zeros(graph.num_vertices)

            def lower_bound_array(self, graph):
                return np.zeros(graph.num_vertices)

        with pytest.raises(ProgramError):
            WalkEngine(graph, Broken(), WalkConfig(num_walkers=2))
