"""Exactness tests: engine per-step laws vs direct enumeration.

The paper's central claim is that rejection sampling is *exact*: the
engine's next-vertex law at every step equals the normalised
``Ps * Pd`` law, even with outlier folding and pre-acceptance enabled.
These tests pin that on small graphs where the laws can be enumerated.
"""

import numpy as np
import pytest

from repro.algorithms import Node2Vec
from repro.baselines import FullScanWalkEngine, PrecomputedNode2Vec
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import assign_random_weights
from repro.graph.generators import uniform_degree_graph

from tests.helpers import (
    assert_matches_distribution,
    diamond_graph,
    exact_node2vec_law,
)

NUM_WALKERS = 12_000


def second_step_law(graph, program, start, seed=0, num_walkers=NUM_WALKERS, **engine_kwargs):
    """Empirical (prev, final) distribution after exactly two steps."""
    config = WalkConfig(
        num_walkers=num_walkers,
        max_steps=2,
        record_paths=True,
        seed=seed,
        start_vertices=np.full(num_walkers, start, dtype=np.int64),
    )
    result = WalkEngine(graph, program, config, **engine_kwargs).run()
    return [path for path in result.paths if len(path) == 3]


def exact_two_step_law(graph, p, q, biased, start):
    """Exact joint law over (middle, final) pairs, flattened."""
    first = exact_node2vec_law(graph, start, -1, p, q, biased)
    joint = np.zeros((graph.num_vertices, graph.num_vertices))
    for middle in range(graph.num_vertices):
        if first[middle] == 0:
            continue
        second = exact_node2vec_law(graph, middle, start, p, q, biased)
        joint[middle] = first[middle] * second
    return joint.ravel()


class TestNode2VecExactness:
    @pytest.mark.parametrize("p,q", [(2.0, 0.5), (0.5, 2.0), (1.0, 4.0)])
    def test_two_step_law_unbiased(self, p, q):
        graph = diamond_graph()
        paths = second_step_law(
            graph, Node2Vec(p=p, q=q, biased=False), start=0
        )
        samples = [int(path[1]) * 4 + int(path[2]) for path in paths]
        assert_matches_distribution(
            samples, exact_two_step_law(graph, p, q, False, 0)
        )

    def test_two_step_law_biased(self):
        graph = diamond_graph(weights=True)
        paths = second_step_law(
            graph, Node2Vec(p=0.5, q=2.0, biased=True), start=0
        )
        samples = [int(path[1]) * 4 + int(path[2]) for path in paths]
        assert_matches_distribution(
            samples, exact_two_step_law(graph, 0.5, 2.0, True, 0)
        )

    def test_folding_matches_unfolded(self):
        """Outlier folding changes cost, never the law."""
        graph = diamond_graph()
        laws = {}
        for fold in (True, False):
            paths = second_step_law(
                graph,
                Node2Vec(p=0.25, q=4.0, biased=False, fold_outlier=fold),
                start=1,
                seed=fold,
            )
            samples = [int(path[1]) * 4 + int(path[2]) for path in paths]
            laws[fold] = np.bincount(samples, minlength=16)
        exact = exact_two_step_law(graph, 0.25, 4.0, False, 1)
        assert_matches_distribution(
            np.repeat(np.arange(16), laws[True]), exact
        )
        assert_matches_distribution(
            np.repeat(np.arange(16), laws[False]), exact
        )

    def test_lower_bound_disabled_same_law(self):
        graph = diamond_graph()
        paths = second_step_law(
            graph,
            Node2Vec(p=2.0, q=0.5, biased=False),
            start=0,
            use_lower_bound=False,
        )
        samples = [int(path[1]) * 4 + int(path[2]) for path in paths]
        assert_matches_distribution(
            samples, exact_two_step_law(graph, 2.0, 0.5, False, 0)
        )

    def test_scalar_reference_path_same_law(self):
        graph = diamond_graph()
        paths = second_step_law(
            graph,
            Node2Vec(p=0.5, q=2.0, biased=False),
            start=0,
            num_walkers=4000,
            force_scalar=True,
        )
        samples = [int(path[1]) * 4 + int(path[2]) for path in paths]
        assert_matches_distribution(
            samples, exact_two_step_law(graph, 0.5, 2.0, False, 0)
        )


class TestAgainstOracles:
    def test_rejection_matches_full_scan(self):
        """Two independent exact implementations agree."""
        graph = uniform_degree_graph(40, 5, seed=3, undirected=True)
        program_args = dict(p=0.5, q=2.0, biased=False)
        histograms = {}
        for engine_cls in (WalkEngine, FullScanWalkEngine):
            config = WalkConfig(
                num_walkers=8000,
                max_steps=3,
                record_paths=True,
                seed=9,
                start_vertices=np.zeros(8000, dtype=np.int64),
            )
            result = engine_cls(graph, Node2Vec(**program_args), config).run()
            finals = [int(path[-1]) for path in result.paths]
            histograms[engine_cls.__name__] = np.bincount(finals, minlength=40)
        a = histograms["WalkEngine"] / 8000
        b = histograms["FullScanWalkEngine"] / 8000
        assert np.abs(a - b).max() < 0.03

    def test_rejection_matches_precomputed_oracle(self):
        """Engine's one-step conditional law equals the precomputed
        per-(prev, cur) alias tables' law."""
        graph = assign_random_weights(
            uniform_degree_graph(25, 4, seed=5, undirected=True), seed=6
        )
        p, q = 0.5, 2.0
        oracle = PrecomputedNode2Vec(graph, p=p, q=q, biased=True)
        rng = np.random.default_rng(7)

        current = 0
        previous = int(graph.neighbors(0)[0])
        oracle_samples = [
            oracle.sample(current, previous, rng) for _ in range(NUM_WALKERS)
        ]
        law = exact_node2vec_law(graph, current, previous, p, q, True)
        assert_matches_distribution(oracle_samples, law)
