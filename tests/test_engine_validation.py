"""Engine robustness: debug validation and configuration corner cases."""

import numpy as np
import pytest

from repro.algorithms import Node2Vec, PPR, UniformWalk
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ProgramError
from repro.graph.generators import uniform_degree_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(100, 5, seed=0, undirected=True)


class TestValidateBounds:
    def test_correct_program_passes(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=10)
        result = WalkEngine(
            graph,
            Node2Vec(p=0.5, q=2.0, biased=False),
            config,
            validate_bounds=True,
        ).run()
        assert result.stats.total_steps == 400

    def test_violating_program_raises(self, graph):
        class Liar(Node2Vec):
            """Declares an envelope its Pd then ignores."""

            def upper_bound_array(self, graph):
                return np.full(graph.num_vertices, 0.5)

            def lower_bound_array(self, graph):
                return np.zeros(graph.num_vertices)

        config = WalkConfig(num_walkers=40, max_steps=10)
        engine = WalkEngine(
            graph,
            Liar(p=1.0, q=1.0, biased=False),  # true Pd is 1 > 0.5
            config,
            validate_bounds=True,
        )
        with pytest.raises(ProgramError):
            engine.run()

    def test_violation_silent_without_flag(self, graph):
        """Documents the trade-off: without validation the run
        completes (with a wrong law) instead of raising."""

        class Liar(Node2Vec):
            def upper_bound_array(self, graph):
                return np.full(graph.num_vertices, 0.5)

            def lower_bound_array(self, graph):
                return np.zeros(graph.num_vertices)

        config = WalkConfig(num_walkers=10, max_steps=5)
        result = WalkEngine(
            graph, Liar(p=1.0, q=1.0, biased=False), config
        ).run()
        assert result.stats.total_steps == 50

    def test_declared_outlier_above_envelope_is_legal(self, graph):
        """node2vec's folded return edge exceeds the envelope by
        design; validation must not flag it."""
        config = WalkConfig(num_walkers=40, max_steps=10)
        result = WalkEngine(
            graph,
            Node2Vec(p=0.25, q=1.0, biased=False),  # folding active
            config,
            validate_bounds=True,
        ).run()
        assert result.stats.total_steps == 400


class TestDistributedValidateBounds:
    def test_distributed_violation_raises(self, graph):
        class Liar(Node2Vec):
            def upper_bound_array(self, graph):
                return np.full(graph.num_vertices, 0.5)

            def lower_bound_array(self, graph):
                return np.zeros(graph.num_vertices)

        config = WalkConfig(num_walkers=40, max_steps=10)
        engine = DistributedWalkEngine(
            graph,
            Liar(p=1.0, q=1.0, biased=False),
            config,
            num_nodes=2,
            validate_bounds=True,
        )
        with pytest.raises(ProgramError):
            engine.run()

    def test_distributed_correct_program_passes(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=10)
        result = DistributedWalkEngine(
            graph,
            Node2Vec(p=0.25, q=1.0, biased=False),  # folding active
            config,
            num_nodes=2,
            validate_bounds=True,
        ).run()
        assert result.stats.total_steps == 400


class TestConfigurationCorners:
    def test_both_termination_mechanisms(self, graph):
        """max_steps caps walks even under a termination coin."""
        config = WalkConfig(
            num_walkers=500,
            max_steps=12,
            termination_probability=0.05,
            seed=1,
        )
        result = WalkEngine(graph, PPR(), config).run()
        assert result.walk_lengths.max() <= 12
        breakdown = result.stats.termination
        assert breakdown.by_step_limit > 0
        assert breakdown.by_probability > 0
        assert breakdown.total == 500

    def test_its_sampler_distributed(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=8, static_sampler="its")
        result = DistributedWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_nodes=3
        ).run()
        assert result.stats.total_steps == 240

    def test_start_distribution_distributed(self, graph):
        weights = np.zeros(graph.num_vertices)
        weights[:10] = 1.0
        config = WalkConfig(
            num_walkers=50,
            max_steps=5,
            start_distribution=weights,
            record_paths=True,
            seed=2,
        )
        result = DistributedWalkEngine(
            graph, UniformWalk(), config, num_nodes=4
        ).run()
        assert all(path[0] < 10 for path in result.paths)

    def test_single_walker(self, graph):
        config = WalkConfig(num_walkers=1, max_steps=30, record_paths=True)
        result = WalkEngine(graph, UniformWalk(), config).run()
        assert len(result.paths) == 1
        assert len(result.paths[0]) == 31

    def test_zero_max_steps(self, graph):
        config = WalkConfig(num_walkers=5, max_steps=0, record_paths=True)
        result = WalkEngine(graph, UniformWalk(), config).run()
        assert all(len(path) == 1 for path in result.paths)
        assert result.stats.total_steps == 0
