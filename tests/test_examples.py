"""Smoke tests: the example applications must keep running.

Only the fast examples execute here (the embedding pipeline and the
distributed comparison take tens of seconds and are exercised manually
/ by the benchmarks); each runs in a subprocess exactly as a user
would, and its printed claims are sanity-checked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "walk finished" in output
    assert "->" in output  # printed walk sequences


def test_metapath_citations():
    output = run_example("metapath_citations.py")
    assert "authors most cited" in output


def test_custom_walk():
    output = run_example("custom_walk.py")
    assert "hub-averse" in output
    # The example's claim: the bias lowers the visited mean degree.
    lines = [
        line for line in output.splitlines() if "mean degree of visited" in line
    ]
    plain = float(lines[0].split()[-1])
    averse = float(lines[1].split()[-1])
    assert averse < plain


def test_fault_tolerance():
    output = run_example("fault_tolerance.py")
    assert "walks bit-identical under faults: True" in output
    assert "retransmissions" in output
    assert "robustness bill" in output


def test_overload():
    output = run_example("overload.py", timeout=300)
    assert "shed reasons:" in output
    assert "accounting exact:" in output
    assert "-> True" in output  # the conservation law held


def test_dynamic_churn():
    output = run_example("dynamic_churn.py", timeout=300)
    assert "committed 3 epochs" in output
    assert "0 mismatches" in output  # verification probes all clean
    assert "recovered to epoch 3" in output
    assert "conservation balanced" in output
    assert "bit-identical to the pre-crash walk" in output


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "node2vec_corpus.py",
        "ppr_recommendations.py",
        "metapath_citations.py",
        "custom_walk.py",
        "embedding_pipeline.py",
        "distributed_simulation.py",
        "fault_tolerance.py",
        "overload.py",
        "dynamic_churn.py",
    ],
)
def test_example_files_are_importable(name):
    """Every example at least parses and has a main()."""
    source = (EXAMPLES_DIR / name).read_text()
    compiled = compile(source, name, "exec")
    assert "main" in compiled.co_names
