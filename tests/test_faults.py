"""Chaos tests: fault injection, reliable delivery, crash recovery.

The fault plane's core guarantee is that a faulty run with recovery
produces the *same walk* as a fault-free run — faults live on their own
RNG stream and reliable delivery hides them from the logical protocol.
The chaos tests assert that bit-for-bit (paths) and distributionally
(visit counts, walk lengths), across random fault plans and three
algorithm families; the accounting tests reconcile every injected fault
against the retransmission and dedup counters exactly.

The CI chaos job re-runs this file under several ``REPRO_CHAOS_SEED``
values to widen the sampled plan space, and under several
``REPRO_CHAOS_PROFILE`` values (``message`` / ``straggler`` /
``flaky-link`` / ``churn``) to vary which fault family dominates the
random plans (``churn`` targets the dynamic-graph crash sweep in
``test_dynamic_chaos.py``; here it falls back to the message plans).
"""

import os

import numpy as np
import pytest

from repro.algorithms import MetaPathWalk, Node2Vec, PPR, random_schemes
from repro.cluster import (
    DistributedWalkEngine,
    FaultPlan,
    FlakyLink,
    MessageFaults,
    MessageKind,
    NodeCrash,
    NodeSlowdown,
    RetryPolicy,
    StragglerPolicy,
    random_degraded_plan,
    random_fault_plan,
)
from repro.core.config import WalkConfig
from repro.errors import (
    ClusterError,
    FaultError,
    MessageTimeoutError,
    NodeCrashError,
)
from repro.graph.datasets import load_dataset
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types
from tests.helpers import assert_matches_distribution

NUM_NODES = 4

# CI widens coverage by re-running the chaos sweep under extra seeds.
CHAOS_SEEDS = (
    [int(os.environ["REPRO_CHAOS_SEED"])]
    if os.environ.get("REPRO_CHAOS_SEED")
    else [1, 2]
)

# ... and under different fault-family profiles.
CHAOS_PROFILE = os.environ.get("REPRO_CHAOS_PROFILE", "message")


def _chaos_plan(seed):
    """The equivalence sweep's plan generator, keyed by CI profile."""
    base = random_fault_plan(seed, NUM_NODES)
    if CHAOS_PROFILE == "message":
        return base
    if CHAOS_PROFILE == "straggler":
        return random_degraded_plan(
            seed, NUM_NODES, max_flaky_links=0, base=base
        )
    if CHAOS_PROFILE == "flaky-link":
        return random_degraded_plan(
            seed, NUM_NODES, max_slowdowns=1, max_factor=3.0,
            max_flaky_links=2, base=base,
        )
    if CHAOS_PROFILE == "churn":
        # The churn profile exists for tests/test_dynamic_chaos.py (the
        # dynamic-graph crash sweep); this file still runs in that CI
        # cell, under the baseline message-fault plans.
        return base
    raise AssertionError(f"unknown REPRO_CHAOS_PROFILE {CHAOS_PROFILE!r}")


@pytest.fixture(scope="module")
def graph():
    return uniform_degree_graph(300, 6, seed=0, undirected=True)


def _program_setup(name, graph, seed):
    """(program factory, graph, config) per algorithm family."""
    if name == "node2vec":
        config = WalkConfig(
            num_walkers=120, max_steps=18, record_paths=True, seed=seed
        )
        return lambda: Node2Vec(p=0.5, q=2.0, biased=False), graph, config
    if name == "metapath":
        typed = assign_random_edge_types(graph, 3, seed=5)
        schemes = random_schemes(6, 3, 3, seed=6)
        config = WalkConfig(
            num_walkers=120, max_steps=15, record_paths=True, seed=seed
        )
        return lambda: MetaPathWalk(schemes), typed, config
    if name == "ppr":
        config = WalkConfig(
            num_walkers=200,
            max_steps=40,
            termination_probability=0.08,
            record_paths=True,
            seed=seed,
        )
        return lambda: PPR(), graph, config
    raise AssertionError(name)


def _run(graph, make_program, config, **engine_kwargs):
    return DistributedWalkEngine(
        graph, make_program(), config, num_nodes=NUM_NODES, **engine_kwargs
    ).run()


def _visits(paths):
    return np.concatenate([np.asarray(p) for p in paths])


class TestChaosEquivalence:
    """Random fault plans never change what the walk computes."""

    @pytest.mark.parametrize("algorithm", ["node2vec", "metapath", "ppr"])
    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    def test_faulty_run_matches_fault_free(self, graph, algorithm, chaos_seed):
        make_program, walk_graph, config = _program_setup(
            algorithm, graph, seed=40 + chaos_seed
        )
        plan = _chaos_plan(chaos_seed)
        clean = _run(walk_graph, make_program, config)
        faulty = _run(
            walk_graph, make_program, config,
            fault_plan=plan, checkpoint_every=4,
        )

        # Bit-identical: same paths, same lengths, same logical stats.
        assert len(clean.paths) == len(faulty.paths)
        for a, b in zip(clean.paths, faulty.paths):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            clean.walk_lengths, faulty.walk_lengths
        )
        assert clean.stats.counters.trials == faulty.stats.counters.trials

        # Distributional: visit counts match under the chi-square check
        # the engine-equivalence tests use (trivially, given the above —
        # this is the acceptance criterion stated independently).
        clean_visits = _visits(clean.paths)
        law = np.bincount(clean_visits, minlength=walk_graph.num_vertices)
        assert_matches_distribution(
            _visits(faulty.paths), law / law.sum()
        )

        # Every injected fault was absorbed by the delivery layer.
        faulty.cluster.delivery.check_conservation()
        if plan.has_message_faults:
            assert faulty.cluster.simulated_seconds >= clean.cluster.simulated_seconds

    def test_delay_only_plan_costs_spurious_retransmissions(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=9
        )
        plan = FaultPlan(
            seed=3, default_faults=MessageFaults(delay=0.1)
        )
        result = _run(walk_graph, make_program, config, fault_plan=plan)
        delivery = result.cluster.delivery
        delivery.check_conservation()
        # A delayed packet still arrives, so the retransmission it
        # provokes is always discarded by the receiver: with no drops
        # or duplicates, every retransmission becomes exactly one
        # dedup.  (A delay hitting an already-acked retransmission
        # provokes nothing further, so delays can exceed both.)
        assert delivery.dedups == delivery.retransmissions > 0
        assert delivery.delays >= delivery.retransmissions


class TestCounterReconciliation:
    """Injected faults reconcile exactly with protocol overhead."""

    def test_drop_and_duplicate_accounting_is_exact(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=11
        )
        plan = FaultPlan(
            seed=7,
            default_faults=MessageFaults(drop=0.1, duplicate=0.05),
        )
        result = _run(walk_graph, make_program, config, fault_plan=plan)
        for kind in MessageKind:
            counters = result.cluster.delivery.of(kind)
            counters.check_conservation()
            # Without delays, only a dropped packet of an undelivered
            # message triggers a retransmission, and only duplicate
            # copies are ever discarded.
            assert counters.retransmissions == counters.drops
            assert counters.dedups == counters.duplicates
            assert counters.accepts == counters.logical

    def test_clean_network_has_zero_overhead(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=12
        )
        plan = FaultPlan(seed=1)  # no faults at all
        result = _run(walk_graph, make_program, config, fault_plan=plan)
        delivery = result.cluster.delivery
        delivery.check_conservation()
        assert delivery.retransmissions == 0
        assert delivery.dedups == 0
        assert delivery.logical == delivery.accepts > 0


class TestAcceptance:
    """The issue's end-to-end scenario on the Twitter stand-in."""

    def test_twitter_node2vec_survives_crash_and_message_faults(self):
        walk_graph = load_dataset("twitter", scale=0.02)
        config = WalkConfig(
            num_walkers=200, max_steps=20, record_paths=True, seed=1
        )
        faults = MessageFaults(drop=0.06, duplicate=0.03)
        plan = FaultPlan(
            seed=17,
            crashes=(NodeCrash(superstep=5, node=1),),
            per_kind={kind: faults for kind in MessageKind},
        )
        make_program = lambda: Node2Vec(p=0.5, q=2.0, biased=False)
        clean = _run(walk_graph, make_program, config)
        faulty = _run(
            walk_graph, make_program, config,
            fault_plan=plan, checkpoint_every=4,
        )

        # Completion + distributional equivalence.
        assert faulty.walkers.num_active == 0
        np.testing.assert_array_equal(
            clean.walk_lengths, faulty.walk_lengths
        )
        clean_visits = _visits(clean.paths)
        law = np.bincount(clean_visits, minlength=walk_graph.num_vertices)
        assert_matches_distribution(_visits(faulty.paths), law / law.sum())

        # Walker migration stayed exactly-once despite drops and dups.
        migrate = faulty.cluster.delivery.of(MessageKind.WALKER_MIGRATE)
        migrate.check_conservation()
        assert migrate.accepts == migrate.logical
        assert migrate.drops > 0 and migrate.duplicates > 0

        # The run report itemises the robustness bill.
        recovery = faulty.cluster.recovery
        assert recovery.crashes == 1
        assert recovery.checkpoints_taken >= 2
        assert recovery.replayed_supersteps >= 1
        report = faulty.cluster.report()
        for needle in (
            "retransmissions", "dedups", "crashes",
            "checkpoints taken", "supersteps replayed",
        ):
            assert needle in report
        assert faulty.cluster.simulated_seconds > clean.cluster.simulated_seconds


class TestFailureModes:
    def test_retry_budget_exhaustion_raises(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=13
        )
        plan = FaultPlan(seed=2, default_faults=MessageFaults(drop=1.0))
        with pytest.raises(MessageTimeoutError):
            _run(
                walk_graph, make_program, config,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=3),
            )

    def test_crash_with_checkpointing_disabled_aborts(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=14
        )
        plan = FaultPlan(seed=2, crashes=(NodeCrash(superstep=2, node=0),))
        with pytest.raises(NodeCrashError):
            _run(
                walk_graph, make_program, config,
                fault_plan=plan, checkpoint_every=0,
            )

    def test_permanent_crash_without_degrade_aborts(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=15
        )
        plan = FaultPlan(
            seed=2,
            crashes=(NodeCrash(superstep=2, node=0, restart=False),),
        )
        with pytest.raises(NodeCrashError):
            _run(walk_graph, make_program, config, fault_plan=plan)

    def test_streaming_paths_incompatible_with_crash_plan(
        self, graph, tmp_path
    ):
        config = WalkConfig(
            num_walkers=20,
            max_steps=10,
            stream_paths_to=str(tmp_path / "corpus.txt"),
        )
        plan = FaultPlan(seed=2, crashes=(NodeCrash(superstep=1, node=0),))
        with pytest.raises(FaultError):
            DistributedWalkEngine(
                graph, Node2Vec(p=1.0, q=1.0, biased=False), config,
                num_nodes=NUM_NODES, fault_plan=plan,
            )

    def test_plan_validation(self):
        with pytest.raises(ClusterError):
            MessageFaults(drop=1.2)
        with pytest.raises(ClusterError):
            MessageFaults(drop=0.6, duplicate=0.3, delay=0.2)
        with pytest.raises(ClusterError):
            NodeCrash(superstep=-1, node=0)
        with pytest.raises(ClusterError):
            RetryPolicy(max_attempts=0)


def _degraded_plan(seed=23):
    """A ramping straggler plus a flaky high-RTT link."""
    return FaultPlan(
        seed=seed,
        slowdowns=(
            NodeSlowdown(node=1, factor=5.0, start_superstep=2,
                         ramp_supersteps=4),
        ),
        flaky_links=(
            FlakyLink(a=0, b=2, faults=MessageFaults(drop=0.2, delay=0.25),
                      rtt_factor=4.0),
        ),
    )


class TestStragglerTolerance:
    """Degraded nodes and links: detected, tolerated, walk unchanged."""

    def test_degraded_run_completes_bit_identical_and_detected(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=21
        )
        clean = _run(walk_graph, make_program, config)
        degraded = _run(
            walk_graph, make_program, config, fault_plan=_degraded_plan()
        )

        # Completes with the bit-identical walk: the tolerance stack
        # (health, speculation, rebalancing) never touches the walk RNG.
        assert degraded.walkers.num_active == 0
        for a, b in zip(clean.paths, degraded.paths):
            np.testing.assert_array_equal(a, b)
        degraded.cluster.delivery.check_conservation()

        # The failure detector flagged the straggler — and only it.
        health = degraded.cluster.health
        assert health is not None
        assert health.suspect_events >= 1
        assert health.suspected_supersteps > 0
        assert degraded.cluster.simulated_seconds > clean.cluster.simulated_seconds
        report = degraded.cluster.report()
        for needle in ("health:", "suspicions", "peak phi"):
            assert needle in report
        # A clean run carries no health section at all.
        assert clean.cluster.health is None
        assert "health:" not in clean.cluster.report()

    def test_tolerance_beats_naive_straggling(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=22
        )
        naive = _run(
            walk_graph, make_program, config, fault_plan=_degraded_plan(),
            straggler_policy=StragglerPolicy(speculate=False, rebalance=False),
        )
        tolerant = _run(
            walk_graph, make_program, config, fault_plan=_degraded_plan(),
            # 120 walkers over 4 nodes leave ~30 on the suspect, so
            # lower the migration floor to let rebalancing engage.
            straggler_policy=StragglerPolicy(min_walkers=8),
        )
        # Same walk either way...
        for a, b in zip(naive.paths, tolerant.paths):
            np.testing.assert_array_equal(a, b)
        # ...but speculation + rebalancing claw back simulated time.
        assert (
            tolerant.cluster.simulated_seconds
            < naive.cluster.simulated_seconds
        )
        health = tolerant.cluster.health
        assert health.speculation_wins > 0
        assert health.migrated_walkers > 0
        # Speculative copies reconcile through the dedup layer, so the
        # conservation laws still balance on both runs.
        naive.cluster.delivery.check_conservation()
        tolerant.cluster.delivery.check_conservation()

    def test_adaptive_timers_absorb_flaky_link_delays(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=23
        )
        plan = FaultPlan(
            seed=5,
            flaky_links=(
                FlakyLink(a=0, b=2, faults=MessageFaults(delay=0.4),
                          rtt_factor=1.0),
            ),
        )
        result = _run(walk_graph, make_program, config, fault_plan=plan)
        delivery = result.cluster.delivery
        delivery.check_conservation()
        # Early delays beat the initial timeout and cost spurious
        # retransmissions; once the link's timers learn its latency
        # tail, delayed packets are absorbed — so across the run most
        # delays never provoked a retransmission.
        assert delivery.delays > 0
        assert delivery.retransmissions < delivery.delays

    def test_replay_of_degraded_run_is_deterministic(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=24
        )
        first = _run(
            walk_graph, make_program, config, fault_plan=_degraded_plan()
        )
        second = _run(
            walk_graph, make_program, config, fault_plan=_degraded_plan()
        )
        assert (
            first.cluster.simulated_seconds
            == second.cluster.simulated_seconds
        )
        assert (
            first.cluster.delivery.retransmissions
            == second.cluster.delivery.retransmissions
        )
        health_a, health_b = first.cluster.health, second.cluster.health
        assert health_a.suspect_events == health_b.suspect_events
        assert health_a.migrated_walkers == health_b.migrated_walkers
        assert health_a.phi_max == health_b.phi_max

    def test_sanitizer_certifies_degraded_replay(self, graph):
        from repro.lint.sanitizer import run_sanitized

        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=25
        )

        def factory():
            return DistributedWalkEngine(
                walk_graph, make_program(), config, num_nodes=NUM_NODES,
                fault_plan=_degraded_plan(),
            )

        report = run_sanitized(factory, runs=2)
        assert report.deterministic

    @pytest.mark.parametrize("algorithm", ["node2vec", "metapath", "ppr"])
    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    def test_combined_chaos_schedule_property(
        self, graph, algorithm, chaos_seed
    ):
        """Property: under a randomized crash + drop + duplicate +
        delay + slowdown + flaky-link schedule, the run completes, the
        exactly-once accounting balances, and the walk is unchanged."""
        make_program, walk_graph, config = _program_setup(
            algorithm, graph, seed=60 + chaos_seed
        )
        plan = random_degraded_plan(
            chaos_seed,
            NUM_NODES,
            base=random_fault_plan(chaos_seed, NUM_NODES),
        )
        clean = _run(walk_graph, make_program, config)
        chaotic = _run(
            walk_graph, make_program, config,
            fault_plan=plan, checkpoint_every=4,
        )
        assert chaotic.walkers.num_active == 0
        for a, b in zip(clean.paths, chaotic.paths):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            clean.walk_lengths, chaotic.walk_lengths
        )
        chaotic.cluster.delivery.check_conservation()
        assert chaotic.cluster.health is not None


class TestGracefulDegradation:
    def test_dead_node_vertices_move_to_survivors(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=16
        )
        plan = FaultPlan(
            seed=4,
            crashes=(NodeCrash(superstep=3, node=2, restart=False),),
        )
        clean = _run(walk_graph, make_program, config)
        degraded = _run(
            walk_graph, make_program, config,
            fault_plan=plan, checkpoint_every=3, degrade_on_crash=True,
        )
        assert degraded.cluster.recovery.degraded_nodes == [2]
        # The walk itself is unchanged by the re-partitioning.
        for a, b in zip(clean.paths, degraded.paths):
            np.testing.assert_array_equal(a, b)
        # The dead node stops doing walker work after the crash: every
        # remaining walker superstep lands on a survivor.
        engine = DistributedWalkEngine(
            walk_graph, make_program(), config, num_nodes=NUM_NODES,
            fault_plan=FaultPlan(
                seed=4,
                crashes=(NodeCrash(superstep=3, node=2, restart=False),),
            ),
            checkpoint_every=3, degrade_on_crash=True,
        )
        engine.run()
        owners = engine._owners(
            np.arange(walk_graph.num_vertices, dtype=np.int64)
        )
        assert not np.any(owners == 2)
        assert np.array_equal(np.unique(owners), np.array([0, 1, 3]))

    def test_last_node_crash_is_fatal(self, graph):
        make_program, walk_graph, config = _program_setup(
            "node2vec", graph, seed=17
        )
        config = WalkConfig(num_walkers=30, max_steps=10, seed=3)
        plan = FaultPlan(
            seed=5, crashes=(NodeCrash(superstep=1, node=0, restart=False),)
        )
        engine = DistributedWalkEngine(
            walk_graph, make_program(), config, num_nodes=1,
            fault_plan=plan, checkpoint_every=2, degrade_on_crash=True,
        )
        with pytest.raises(NodeCrashError):
            engine.run()
