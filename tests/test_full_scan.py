"""Tests for the full-scan baseline engine and its sampling helpers."""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, MetaPathWalk, Node2Vec, UniformWalk
from repro.baselines.full_scan import (
    FullScanWalkEngine,
    gather_out_edges,
    segmented_sample,
)
from repro.core.config import WalkConfig
from repro.graph.builder import from_edges
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types

from tests.helpers import assert_matches_distribution, diamond_graph


class TestGatherOutEdges:
    def test_structure(self):
        graph = diamond_graph()
        vertices = np.array([1, 0, 3])
        edges, segments, offsets = gather_out_edges(graph, vertices)
        assert edges.size == 3 + 2 + 2
        assert offsets.tolist() == [0, 3, 5, 7]
        assert segments.tolist() == [0, 0, 0, 1, 1, 2, 2]
        # Each gathered index lies in its vertex's CSR slice.
        for lane, vertex in enumerate(vertices):
            start, end = graph.edge_range(int(vertex))
            chunk = edges[offsets[lane] : offsets[lane + 1]]
            assert np.all((chunk >= start) & (chunk < end))

    def test_empty_vertex(self):
        graph = from_edges(3, [(0, 1)])
        edges, _segments, offsets = gather_out_edges(graph, np.array([1, 0]))
        assert offsets.tolist() == [0, 0, 1]
        assert edges.size == 1


class TestSegmentedSample:
    def test_matches_per_segment_distribution(self):
        mass = np.array([1.0, 3.0, 2.0, 2.0, 0.0, 5.0])
        offsets = np.array([0, 2, 6])
        rng = np.random.default_rng(0)
        first, second = [], []
        for _ in range(20_000):
            choices, totals = segmented_sample(mass, offsets, rng)
            first.append(choices[0])
            second.append(choices[1] - 2)
            assert totals.tolist() == [4.0, 9.0]
        assert_matches_distribution(first, mass[:2])
        assert_matches_distribution(second, mass[2:])

    def test_zero_segment(self):
        mass = np.array([0.0, 0.0, 1.0])
        offsets = np.array([0, 2, 3])
        rng = np.random.default_rng(1)
        choices, totals = segmented_sample(mass, offsets, rng)
        assert choices[0] == -1
        assert choices[1] == 2
        assert totals[0] == 0.0

    def test_empty_segment(self):
        mass = np.array([2.0])
        offsets = np.array([0, 0, 1])
        rng = np.random.default_rng(2)
        choices, totals = segmented_sample(mass, offsets, rng)
        assert choices[0] == -1 and choices[1] == 0

    def test_all_zero(self):
        rng = np.random.default_rng(3)
        choices, _ = segmented_sample(np.zeros(3), np.array([0, 3]), rng)
        assert choices[0] == -1


class TestFullScanEngine:
    def test_counts_every_edge_scanned(self):
        # Directed uniform graph: every vertex has out-degree exactly 7,
        # so the scan costs exactly 7 Pd evaluations per step.
        graph = uniform_degree_graph(50, 7, seed=0)
        config = WalkConfig(num_walkers=20, max_steps=10)
        result = FullScanWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config
        ).run()
        assert result.stats.pd_evaluations_per_step == pytest.approx(7.0)
        assert result.stats.total_steps == 200

    def test_static_programs_skip_scanning(self):
        graph = uniform_degree_graph(50, 4, seed=0)
        config = WalkConfig(num_walkers=20, max_steps=10)
        result = FullScanWalkEngine(graph, DeepWalk(), config).run()
        assert result.stats.counters.pd_evaluations == 0

    def test_paths_are_valid(self):
        graph = uniform_degree_graph(60, 5, seed=1, undirected=True)
        config = WalkConfig(num_walkers=20, max_steps=8, record_paths=True)
        result = FullScanWalkEngine(
            graph, Node2Vec(p=0.5, q=2.0, biased=False), config
        ).run()
        for path in result.paths:
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_metapath_dead_end(self):
        graph = assign_random_edge_types(
            uniform_degree_graph(30, 3, seed=2), 1, seed=3
        )
        program = MetaPathWalk([[7]])  # type 7 never exists
        config = WalkConfig(num_walkers=10, max_steps=5)
        result = FullScanWalkEngine(graph, program, config).run()
        assert result.stats.termination.by_dead_end == 10

    def test_uniform_walk_matches_rejection_engine(self):
        from repro.core.engine import WalkEngine

        graph = diamond_graph()
        histograms = {}
        for engine_cls in (FullScanWalkEngine, WalkEngine):
            config = WalkConfig(
                num_walkers=10_000,
                max_steps=1,
                record_paths=True,
                seed=4,
                start_vertices=np.full(10_000, 1, dtype=np.int64),
            )
            result = engine_cls(graph, UniformWalk(), config).run()
            finals = [int(p[-1]) for p in result.paths]
            histograms[engine_cls] = np.bincount(finals, minlength=4)
        a = histograms[FullScanWalkEngine]
        b = histograms[WalkEngine]
        assert np.abs(a / 10_000 - b / 10_000).max() < 0.03
