"""Tests for the Gemini-adapted baseline engine."""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, Node2Vec, UniformWalk
from repro.baselines import GeminiWalkEngine
from repro.cluster import DistributedWalkEngine, MessageKind
from repro.core.config import WalkConfig
from repro.graph.generators import uniform_degree_graph

from tests.helpers import diamond_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(200, 6, seed=0, undirected=True)


class TestExecution:
    def test_walks_complete_and_valid(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=10, record_paths=True)
        result = GeminiWalkEngine(graph, DeepWalk(), config, num_nodes=4).run()
        assert all(len(path) == 11 for path in result.paths)
        for path in result.paths:
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_distribution_matches_knightking(self):
        """Two-phase sampling draws from the same law."""
        graph = diamond_graph(weights=True)
        config = WalkConfig(
            num_walkers=10_000,
            max_steps=1,
            record_paths=True,
            seed=1,
            start_vertices=np.full(10_000, 1, dtype=np.int64),
        )
        gemini = GeminiWalkEngine(graph, DeepWalk(), config, num_nodes=2).run()
        knightking = DistributedWalkEngine(
            graph, DeepWalk(), config, num_nodes=2
        ).run()
        a = np.bincount([int(p[-1]) for p in gemini.paths], minlength=4)
        b = np.bincount([int(p[-1]) for p in knightking.paths], minlength=4)
        assert np.abs(a / 10_000 - b / 10_000).max() < 0.03

    def test_dynamic_walk_distribution(self):
        graph = diamond_graph()
        config = WalkConfig(
            num_walkers=8000,
            max_steps=2,
            record_paths=True,
            seed=2,
            start_vertices=np.zeros(8000, dtype=np.int64),
        )
        program = Node2Vec(p=0.5, q=2.0, biased=False)
        gemini = GeminiWalkEngine(graph, program, config, num_nodes=2).run()
        local = DistributedWalkEngine(graph, program, config, num_nodes=2).run()
        a = np.bincount([int(p[-1]) for p in gemini.paths], minlength=4)
        b = np.bincount([int(p[-1]) for p in local.paths], minlength=4)
        assert np.abs(a / 8000 - b / 8000).max() < 0.03


class TestCostStructure:
    def test_dynamic_scans_every_edge(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=10)
        result = GeminiWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_nodes=4
        ).run()
        # Full scans: evaluations/step near the (visit-weighted) degree.
        assert result.stats.pd_evaluations_per_step > 10

    def test_static_needs_no_pd(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=10)
        result = GeminiWalkEngine(graph, DeepWalk(), config, num_nodes=4).run()
        assert result.stats.counters.pd_evaluations == 0

    def test_mirror_broadcast_messages(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=10)
        gemini = GeminiWalkEngine(graph, DeepWalk(), config, num_nodes=4).run()
        knightking = DistributedWalkEngine(
            graph, DeepWalk(), config, num_nodes=4
        ).run()
        # Gemini's broadcasts and two-phase hops send far more messages
        # for the same walk.
        assert (
            gemini.cluster.network.total_messages()
            > 2 * knightking.cluster.network.total_messages()
        )

    def test_slower_than_knightking_on_dynamic(self, graph):
        config = WalkConfig(num_walkers=60, max_steps=10, seed=3)
        program_args = dict(p=2.0, q=0.5, biased=False)
        gemini = GeminiWalkEngine(
            graph, Node2Vec(**program_args), config, num_nodes=4
        ).run()
        knightking = DistributedWalkEngine(
            graph, Node2Vec(**program_args), config, num_nodes=4
        ).run()
        assert (
            gemini.cluster.simulated_seconds
            > 2 * knightking.cluster.simulated_seconds
        )

    def test_static_gap_smaller_than_dynamic_gap(self, graph):
        """The paper's key contrast: one order of magnitude for static
        walks, explosive for dynamic ones."""
        config = WalkConfig(num_walkers=60, max_steps=10, seed=4)

        def speedup(program_factory):
            gemini = GeminiWalkEngine(
                graph, program_factory(), config, num_nodes=4
            ).run()
            knightking = DistributedWalkEngine(
                graph, program_factory(), config, num_nodes=4
            ).run()
            return (
                gemini.cluster.simulated_seconds
                / knightking.cluster.simulated_seconds
            )

        static_gap = speedup(DeepWalk)
        dynamic_gap = speedup(lambda: Node2Vec(p=2, q=0.5, biased=False))
        assert dynamic_gap > static_gap

    def test_uniform_walk_supported(self, graph):
        config = WalkConfig(num_walkers=20, max_steps=5)
        result = GeminiWalkEngine(graph, UniformWalk(), config, num_nodes=2).run()
        assert result.stats.total_steps == 100

    def test_metapath_dead_ends_handled(self):
        """Gemini's full scan finds zero eligible mass and terminates
        the walk, like the other engines."""
        from repro.algorithms import MetaPathWalk
        from repro.graph.hetero import assign_random_edge_types

        graph = assign_random_edge_types(
            uniform_degree_graph(40, 3, seed=5), 1, seed=6
        )
        program = MetaPathWalk([[3]])  # type 3 never exists
        config = WalkConfig(num_walkers=10, max_steps=5, record_paths=True)
        result = GeminiWalkEngine(graph, program, config, num_nodes=2).run()
        assert result.stats.termination.by_dead_end == 10
        assert all(len(path) == 1 for path in result.paths)

    def test_per_node_scan_attribution(self, graph):
        """Dynamic scan work is attributed to the nodes hosting the
        edges (Gemini's mirrors), summing to the global counter."""
        config = WalkConfig(num_walkers=40, max_steps=8, seed=7)
        engine = GeminiWalkEngine(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_nodes=4
        )
        result = engine.run()
        assert int(result.cluster.pd_evaluations_per_node.sum()) == (
            result.stats.counters.pd_evaluations
        )
