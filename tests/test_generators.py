"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_graph,
    hotspot_graph,
    ring_graph,
    rmat_graph,
    sample_truncated_power_law,
    star_graph,
    truncated_power_law_graph,
    uniform_degree_graph,
)


class TestUniformDegree:
    def test_exact_out_degrees(self):
        graph = uniform_degree_graph(100, 7, seed=0)
        assert np.all(graph.out_degrees() == 7)

    def test_no_self_loops(self):
        graph = uniform_degree_graph(50, 5, seed=1)
        sources = np.repeat(np.arange(50), graph.out_degrees())
        assert not np.any(sources == graph.targets)

    def test_undirected_flag(self):
        graph = uniform_degree_graph(50, 5, seed=1, undirected=True)
        assert graph.is_undirected
        graph.validate()

    def test_deterministic(self):
        assert uniform_degree_graph(30, 3, seed=5) == uniform_degree_graph(
            30, 3, seed=5
        )
        assert uniform_degree_graph(30, 3, seed=5) != uniform_degree_graph(
            30, 3, seed=6
        )

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            uniform_degree_graph(10, 0, seed=0)
        with pytest.raises(GraphError):
            uniform_degree_graph(1, 2, seed=0)


class TestTruncatedPowerLaw:
    def test_sample_bounds(self):
        rng = np.random.default_rng(0)
        values = sample_truncated_power_law(rng, 5000, 2.0, 3, 100)
        assert values.min() >= 3
        assert values.max() <= 100

    def test_sample_skew(self):
        rng = np.random.default_rng(0)
        values = sample_truncated_power_law(rng, 20_000, 2.0, 3, 1000)
        # Power law: median far below mean.
        assert np.median(values) < values.mean()

    def test_exponent_one(self):
        rng = np.random.default_rng(0)
        values = sample_truncated_power_law(rng, 1000, 1.0, 2, 64)
        assert values.min() >= 2 and values.max() <= 64

    def test_invalid_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            sample_truncated_power_law(rng, 10, 2.0, 0, 10)
        with pytest.raises(GraphError):
            sample_truncated_power_law(rng, 10, 2.0, 5, 4)

    def test_graph_degrees_within_bounds(self):
        graph = truncated_power_law_graph(500, 2.0, 2, 50, seed=3)
        degrees = graph.out_degrees()
        assert degrees.min() >= 2
        assert degrees.max() <= 50

    def test_higher_truncation_raises_variance(self):
        low = truncated_power_law_graph(2000, 2.0, 5, 50, seed=3)
        high = truncated_power_law_graph(2000, 2.0, 5, 1000, seed=3)
        assert (
            high.degree_stats().variance > 3 * low.degree_stats().variance
        )


class TestHotspot:
    def test_hotspot_degrees(self):
        graph = hotspot_graph(1000, 10, num_hotspots=2, hotspot_degree=300, seed=0)
        degrees = graph.out_degrees()
        # The two hotspot vertices are the last ids, degree >= 300.
        assert degrees[-1] >= 300
        assert degrees[-2] >= 300
        # Base vertices stay near base_degree (plus hotspot attachments).
        assert np.median(degrees[:-2]) <= 12

    def test_hotspots_bidirectional(self):
        graph = hotspot_graph(200, 5, num_hotspots=1, hotspot_degree=50, seed=1)
        hotspot = 199
        # Attachment edges are mirrored; the hotspot's 5 base out-edges
        # need not be.  Most unique neighbours must link back.
        neighbours = np.unique(graph.neighbors(hotspot))
        reciprocal = sum(
            graph.has_edge(int(target), hotspot) for target in neighbours
        )
        assert reciprocal >= neighbours.size - 5

    def test_zero_hotspots(self):
        graph = hotspot_graph(100, 5, num_hotspots=0, hotspot_degree=10, seed=0)
        assert np.all(graph.out_degrees() == 5)

    def test_invalid(self):
        with pytest.raises(GraphError):
            hotspot_graph(10, 2, num_hotspots=-1, hotspot_degree=5, seed=0)
        with pytest.raises(GraphError):
            hotspot_graph(10, 2, num_hotspots=10, hotspot_degree=5, seed=0)
        with pytest.raises(GraphError):
            hotspot_graph(10, 2, num_hotspots=1, hotspot_degree=0, seed=0)


class TestOtherGenerators:
    def test_erdos_renyi_mean_degree(self):
        graph = erdos_renyi_graph(1000, 8.0, seed=0)
        assert graph.degree_stats().mean == pytest.approx(8.0, rel=0.05)

    def test_erdos_renyi_invalid(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 0.0, seed=0)

    def test_rmat_size_and_skew(self):
        graph = rmat_graph(scale=10, edge_factor=8, seed=0)
        assert graph.num_vertices == 1024
        assert graph.num_edges == 1024 * 8
        stats = graph.degree_stats()
        assert stats.variance > stats.mean  # heavy-tailed

    def test_rmat_invalid_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(scale=4, edge_factor=2, seed=0, a=0.8, b=0.2, c=0.2)

    def test_ring(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert graph.has_edge(4, 0)
        with pytest.raises(GraphError):
            ring_graph(1)

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 20
        assert all(
            graph.has_edge(u, v) for u in range(5) for v in range(5) if u != v
        )
        with pytest.raises(GraphError):
            complete_graph(1)

    def test_star(self):
        graph = star_graph(10)
        assert graph.out_degree(0) == 10
        assert graph.out_degree(1) == 1
        graph.validate()
        with pytest.raises(GraphError):
            star_graph(0)
