"""Unit tests for the straggler-tolerance building blocks.

The failure detector (:mod:`repro.cluster.health`), the adaptive
per-link retransmission timers (:class:`repro.cluster.network.LinkTimers`),
the degradation fault classes (:class:`repro.cluster.faults.NodeSlowdown`,
:class:`repro.cluster.faults.FlakyLink`), and the walker rebalancer are
each tested in isolation here; their end-to-end composition under a
degraded cluster lives in ``tests/test_faults.py``.
"""

import numpy as np
import pytest

from repro.cluster import (
    CostModel,
    FaultPlan,
    FlakyLink,
    HealthMonitor,
    HealthPolicy,
    LinkTimers,
    MessageFaults,
    NodeSlowdown,
    StragglerPolicy,
    WalkerRebalancer,
    random_degraded_plan,
)
from repro.errors import ClusterError

NUM_NODES = 4
ALIVE = np.ones(NUM_NODES, dtype=bool)


def _observe_rounds(monitor, times, rounds):
    for _ in range(rounds):
        monitor.observe(np.asarray(times, dtype=np.float64), ALIVE)


class TestHealthMonitor:
    def test_straggler_is_suspected_after_warmup(self):
        monitor = HealthMonitor(NUM_NODES)
        _observe_rounds(monitor, [1.0, 1.0, 1.0, 1.0], 3)
        assert not monitor.any_suspected
        _observe_rounds(monitor, [1.0, 5.0, 1.0, 1.0], 3)
        assert monitor.suspected[1]
        assert not monitor.suspected[[0, 2, 3]].any()
        assert monitor.stats.suspect_events == 1
        assert monitor.stats.phi_max >= monitor.policy.phi_suspect

    def test_no_suspicion_during_warmup(self):
        monitor = HealthMonitor(NUM_NODES, HealthPolicy(warmup_supersteps=5))
        _observe_rounds(monitor, [1.0, 20.0, 1.0, 1.0], 5)
        assert not monitor.any_suspected
        _observe_rounds(monitor, [1.0, 20.0, 1.0, 1.0], 1)
        assert monitor.suspected[1]

    def test_recovered_node_clears_after_streak(self):
        policy = HealthPolicy(clear_streak=2)
        monitor = HealthMonitor(NUM_NODES, policy)
        _observe_rounds(monitor, [1.0, 1.0, 1.0, 1.0], 3)
        _observe_rounds(monitor, [1.0, 6.0, 1.0, 1.0], 4)
        assert monitor.suspected[1]
        # Recovery: the EWMA needs a few supersteps to fall back, then
        # two consecutive low-phi observations clear the suspicion.
        cleared_at = None
        for superstep in range(30):
            monitor.observe(np.array([1.0, 1.0, 1.0, 1.0]), ALIVE)
            if not monitor.suspected[1]:
                cleared_at = superstep
                break
        assert cleared_at is not None
        assert monitor.newly_cleared() == [1]
        assert monitor.stats.clear_events == 1
        # The streak requirement means clearing took at least two
        # below-threshold supersteps.
        assert cleared_at >= policy.clear_streak - 1

    def test_uniform_slowdown_is_not_suspicion(self):
        # Every node 3x slower together: no contrast, no straggler.
        monitor = HealthMonitor(NUM_NODES)
        _observe_rounds(monitor, [1.0, 1.0, 1.0, 1.0], 3)
        _observe_rounds(monitor, [3.0, 3.0, 3.0, 3.0], 10)
        assert not monitor.any_suspected

    def test_dead_nodes_are_ignored(self):
        monitor = HealthMonitor(NUM_NODES)
        alive = np.array([True, True, True, False])
        for _ in range(8):
            monitor.observe(np.array([1.0, 4.0, 1.0, 0.0]), alive)
        assert monitor.suspected[1]
        assert not monitor.suspected[3]

    def test_state_roundtrip(self):
        monitor = HealthMonitor(NUM_NODES)
        _observe_rounds(monitor, [1.0, 1.0, 1.0, 1.0], 3)
        _observe_rounds(monitor, [1.0, 5.0, 1.0, 1.0], 4)
        clone = HealthMonitor(NUM_NODES)
        clone.load_arrays(monitor.state_arrays())
        np.testing.assert_array_equal(clone.ewma, monitor.ewma)
        np.testing.assert_array_equal(clone.suspected, monitor.suspected)
        assert clone.stats.suspect_events == monitor.stats.suspect_events
        assert clone.stats.phi_max == monitor.stats.phi_max
        # Both copies evolve identically afterwards.
        monitor.observe(np.array([1.0, 1.0, 1.0, 1.0]), ALIVE)
        clone.observe(np.array([1.0, 1.0, 1.0, 1.0]), ALIVE)
        np.testing.assert_array_equal(clone.phi, monitor.phi)

    def test_policy_validation(self):
        with pytest.raises(ClusterError):
            HealthPolicy(warmup_supersteps=0)
        with pytest.raises(ClusterError):
            HealthPolicy(ewma_gain=0.0)
        with pytest.raises(ClusterError):
            HealthPolicy(phi_suspect=1.0, phi_clear=1.5)
        with pytest.raises(ClusterError):
            HealthPolicy(clear_streak=0)


class TestLinkTimers:
    def test_rto_adapts_to_slow_link(self):
        timers = LinkTimers(NUM_NODES)
        src = np.array([0])
        dst = np.array([2])
        initial = timers.rto(src, dst)[0]
        for _ in range(12):
            timers.observe(src, dst, np.array([6.0]))
        adapted = timers.rto(src, dst)[0]
        assert adapted > initial
        # ... while an unobserved lane keeps its tight initial timeout.
        assert timers.rto(np.array([1]), np.array([3]))[0] == initial

    def test_rto_is_clamped(self):
        timers = LinkTimers(NUM_NODES, min_rto=1.0, max_rto=16.0)
        src, dst = np.array([0]), np.array([1])
        for _ in range(50):
            timers.observe(src, dst, np.array([1000.0]))
        assert timers.rto(src, dst)[0] == 16.0

    def test_batch_observation_uses_worst_sample(self):
        # Concurrent samples on one link must fold to the slowest —
        # averaging would collapse the variance a timeout must cover.
        timers = LinkTimers(NUM_NODES)
        timers.observe(
            np.array([0, 0, 0]), np.array([1, 1, 1]),
            np.array([1.0, 9.0, 1.0]),
        )
        single = LinkTimers(NUM_NODES)
        single.observe(np.array([0]), np.array([1]), np.array([9.0]))
        assert timers.srtt[0, 1] == single.srtt[0, 1]

    def test_backoff_is_deterministic_and_jittered(self):
        timers = LinkTimers(NUM_NODES, jitter=0.25)
        src = np.arange(NUM_NODES).repeat(NUM_NODES)
        dst = np.tile(np.arange(NUM_NODES), NUM_NODES)
        first = timers.backoff_wait(src, dst, attempt=1, salt=7)
        again = timers.backoff_wait(src, dst, attempt=1, salt=7)
        np.testing.assert_array_equal(first, again)
        # Jitter decorrelates lanes: not every lane waits the same.
        assert np.unique(first).size > 1
        base = timers.rto(src, dst)
        assert np.all(first >= base)
        assert np.all(first <= base * 1.25)
        # Exponential growth capped at backoff_cap * (1 + jitter).
        late = timers.backoff_wait(src, dst, attempt=12, salt=7)
        assert np.all(late <= timers.backoff_cap * 1.25)
        assert np.all(late >= timers.backoff_cap)

    def test_salt_and_attempt_change_jitter(self):
        timers = LinkTimers(NUM_NODES)
        src, dst = np.array([0, 1]), np.array([1, 2])
        a = timers.backoff_wait(src, dst, attempt=1, salt=0)
        b = timers.backoff_wait(src, dst, attempt=1, salt=1)
        assert not np.array_equal(a, b)

    def test_state_roundtrip(self):
        timers = LinkTimers(NUM_NODES)
        timers.observe(np.array([0]), np.array([1]), np.array([4.0]))
        clone = LinkTimers(NUM_NODES)
        clone.load_arrays(timers.state_arrays())
        np.testing.assert_array_equal(clone.srtt, timers.srtt)
        np.testing.assert_array_equal(clone.rttvar, timers.rttvar)
        np.testing.assert_array_equal(clone.samples, timers.samples)


class TestDegradationFaults:
    def test_slowdown_ramp(self):
        slow = NodeSlowdown(
            node=1, factor=5.0, start_superstep=2, ramp_supersteps=4,
            end_superstep=10,
        )
        assert slow.factor_at(0) == 1.0
        assert slow.factor_at(2) == 1.0
        assert slow.factor_at(4) == 3.0
        assert slow.factor_at(6) == 5.0
        assert slow.factor_at(9) == 5.0
        assert slow.factor_at(10) == 1.0

    def test_step_slowdown_without_ramp(self):
        slow = NodeSlowdown(node=0, factor=3.0, start_superstep=5)
        assert slow.factor_at(4) == 1.0
        assert slow.factor_at(5) == 3.0
        assert slow.factor_at(100) == 3.0

    def test_plan_slowdown_factors_take_max(self):
        plan = FaultPlan(
            seed=1,
            slowdowns=(
                NodeSlowdown(node=1, factor=2.0),
                NodeSlowdown(node=1, factor=4.0),
            ),
        )
        assert plan.has_slowdowns and plan.has_degradations
        factors = plan.slowdown_factors(0, NUM_NODES)
        np.testing.assert_array_equal(factors, [1.0, 4.0, 1.0, 1.0])

    def test_flaky_link_lanes(self):
        link = FlakyLink(a=0, b=2, faults=MessageFaults(drop=0.2))
        assert set(link.lanes()) == {(0, 2), (2, 0)}
        one_way = FlakyLink(
            a=0, b=2, faults=MessageFaults(drop=0.2), symmetric=False
        )
        assert set(one_way.lanes()) == {(0, 2)}

    def test_validation(self):
        with pytest.raises(ClusterError):
            NodeSlowdown(node=0, factor=0.5)
        with pytest.raises(ClusterError):
            NodeSlowdown(node=0, factor=2.0, start_superstep=5,
                         end_superstep=5)
        with pytest.raises(ClusterError):
            FlakyLink(a=1, b=1, faults=MessageFaults(drop=0.1))
        with pytest.raises(ClusterError):
            FlakyLink(a=0, b=1, faults=MessageFaults(), rtt_factor=0.5)
        with pytest.raises(ClusterError):
            StragglerPolicy(rebalance_fraction=0.0)
        with pytest.raises(ClusterError):
            StragglerPolicy(payback_horizon=0)

    def test_random_degraded_plan_is_reproducible(self):
        a = random_degraded_plan(11, NUM_NODES)
        b = random_degraded_plan(11, NUM_NODES)
        assert a == b
        assert a.has_degradations
        assert len(a.slowdowns) >= 1
        c = random_degraded_plan(12, NUM_NODES)
        assert a != c


class TestWalkerRebalancer:
    def _rebalancer(self, **policy_kwargs):
        policy = StragglerPolicy(min_walkers=8, **policy_kwargs)
        return WalkerRebalancer(NUM_NODES, CostModel(), policy)

    def _crowded_state(self, num_walkers=64):
        # All walkers on node 1 sit on 4 vertices; node 1 is 10x slower.
        rng = np.random.default_rng(0)
        vertices = rng.integers(100, 104, size=num_walkers)
        owners = np.ones(num_walkers, dtype=np.int64)
        ewma = np.array([1.0, 10.0, 1.0, 1.0])
        suspected = np.array([False, True, False, False])
        return vertices, owners, ewma, suspected

    def test_plan_moves_crowded_vertices_to_healthy_nodes(self):
        rebalancer = self._rebalancer()
        vertices, owners, ewma, suspected = self._crowded_state()
        plan = rebalancer.plan(1, vertices, owners, ewma, suspected, ALIVE)
        assert plan is not None
        moved_vertices, targets, moved = plan
        assert moved >= 32  # about rebalance_fraction of 64
        assert np.all(np.isin(moved_vertices, [100, 101, 102, 103]))
        assert np.all(np.isin(targets, [0, 2, 3]))  # never the suspect

    def test_too_few_walkers_not_worth_moving(self):
        rebalancer = self._rebalancer()
        vertices, owners, ewma, suspected = self._crowded_state(num_walkers=4)
        assert (
            rebalancer.plan(1, vertices, owners, ewma, suspected, ALIVE)
            is None
        )

    def test_cost_gate_blocks_marginal_moves(self):
        # A barely-slow node: saving over the horizon cannot beat the
        # migration message bill.
        rebalancer = self._rebalancer(payback_horizon=1)
        vertices, owners, ewma, suspected = self._crowded_state()
        ewma[1] = 1.0 + 1e-9
        assert (
            rebalancer.plan(1, vertices, owners, ewma, suspected, ALIVE)
            is None
        )

    def test_no_healthy_targets_no_plan(self):
        rebalancer = self._rebalancer()
        vertices, owners, ewma, _ = self._crowded_state()
        all_suspected = np.ones(NUM_NODES, dtype=bool)
        assert (
            rebalancer.plan(1, vertices, owners, ewma, all_suspected, ALIVE)
            is None
        )

    def test_record_and_restore_roundtrip(self):
        rebalancer = self._rebalancer()
        rebalancer.record(1, np.array([100, 102]))
        rebalancer.record(1, np.array([102, 103]))
        np.testing.assert_array_equal(
            rebalancer.take_restorable(1), [100, 102, 103]
        )
        assert rebalancer.take_restorable(1).size == 0

    def test_state_roundtrip(self):
        rebalancer = self._rebalancer()
        rebalancer.record(1, np.array([100, 102]))
        rebalancer.record(3, np.array([7]))
        clone = self._rebalancer()
        clone.load_arrays(rebalancer.state_arrays())
        np.testing.assert_array_equal(
            clone.take_restorable(1), rebalancer.take_restorable(1)
        )
        np.testing.assert_array_equal(
            clone.take_restorable(3), rebalancer.take_restorable(3)
        )
