"""Tests for heterogeneous-graph utilities."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import (
    BibliographicSchema,
    assign_random_edge_types,
    bibliographic_graph,
)


class TestAssignRandomEdgeTypes:
    def test_types_in_range(self):
        graph = uniform_degree_graph(80, 4, seed=0)
        typed = assign_random_edge_types(graph, 5, seed=1)
        assert typed.is_heterogeneous
        assert typed.edge_types.min() >= 0
        assert typed.edge_types.max() < 5

    def test_undirected_type_mirroring(self):
        graph = uniform_degree_graph(50, 4, seed=0, undirected=True)
        typed = assign_random_edge_types(graph, 4, seed=2)
        sources = np.repeat(np.arange(50), typed.out_degrees())
        for index in range(0, typed.num_edges, 17):
            source, target = int(sources[index]), int(typed.targets[index])
            reverse = typed.edge_index(target, source)
            assert typed.edge_types[index] == typed.edge_types[reverse]

    def test_all_types_used(self):
        graph = uniform_degree_graph(200, 5, seed=0)
        typed = assign_random_edge_types(graph, 5, seed=3)
        assert set(np.unique(typed.edge_types)) == {0, 1, 2, 3, 4}

    def test_structure_preserved(self):
        graph = uniform_degree_graph(30, 3, seed=0)
        typed = assign_random_edge_types(graph, 2, seed=4)
        np.testing.assert_array_equal(graph.offsets, typed.offsets)
        np.testing.assert_array_equal(graph.targets, typed.targets)

    def test_invalid_type_count(self):
        graph = uniform_degree_graph(10, 2, seed=0)
        with pytest.raises(GraphError):
            assign_random_edge_types(graph, 0, seed=0)

    def test_deterministic(self):
        graph = uniform_degree_graph(30, 3, seed=0)
        first = assign_random_edge_types(graph, 3, seed=5)
        second = assign_random_edge_types(graph, 3, seed=5)
        np.testing.assert_array_equal(first.edge_types, second.edge_types)


class TestBibliographicGraph:
    def test_vertex_types(self):
        graph = bibliographic_graph(
            num_authors=10, num_papers=20, papers_per_author=3,
            citations_per_paper=2, seed=0,
        )
        schema = BibliographicSchema()
        assert graph.num_vertices == 30
        assert np.all(graph.vertex_types[:10] == schema.VERTEX_AUTHOR)
        assert np.all(graph.vertex_types[10:] == schema.VERTEX_PAPER)

    def test_edge_type_semantics(self):
        graph = bibliographic_graph(
            num_authors=8, num_papers=15, papers_per_author=2,
            citations_per_paper=2, seed=1,
        )
        schema = BibliographicSchema()
        sources = np.repeat(np.arange(graph.num_vertices), graph.out_degrees())
        for index in range(graph.num_edges):
            source, target = int(sources[index]), int(graph.targets[index])
            edge_type = int(graph.edge_types[index])
            if edge_type == schema.EDGE_WRITES:
                assert source < 8 and target >= 8
            elif edge_type == schema.EDGE_WRITTEN_BY:
                assert source >= 8 and target < 8
            elif edge_type in (schema.EDGE_CITES, schema.EDGE_CITED_BY):
                assert source >= 8 and target >= 8

    def test_citations_point_backwards(self):
        graph = bibliographic_graph(
            num_authors=5, num_papers=30, papers_per_author=2,
            citations_per_paper=3, seed=2,
        )
        schema = BibliographicSchema()
        sources = np.repeat(np.arange(graph.num_vertices), graph.out_degrees())
        for index in range(graph.num_edges):
            if graph.edge_types[index] == schema.EDGE_CITES:
                assert graph.targets[index] < sources[index]

    def test_metapath_walk_on_bibliographic_graph(self):
        """The paper's motivating meta-path: author -> paper (writes)
        -> cited paper -> its author."""
        from repro.algorithms import MetaPathWalk
        from repro.core.config import WalkConfig
        from repro.core.engine import WalkEngine

        graph = bibliographic_graph(
            num_authors=20, num_papers=60, papers_per_author=4,
            citations_per_paper=3, seed=3,
        )
        schema = BibliographicSchema()
        scheme = [
            schema.EDGE_WRITES,
            schema.EDGE_CITES,
            schema.EDGE_WRITTEN_BY,
        ]
        config = WalkConfig(
            num_walkers=20,
            max_steps=6,
            record_paths=True,
            start_vertices=np.arange(20, dtype=np.int64),
        )
        result = WalkEngine(graph, MetaPathWalk([scheme]), config).run()
        for path in result.paths:
            # Every 3rd hop lands back on an author.
            for position in range(0, len(path), 3):
                assert graph.vertex_types[path[position]] == schema.VERTEX_AUTHOR

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            bibliographic_graph(0, 10, 1, 1, seed=0)
        with pytest.raises(GraphError):
            bibliographic_graph(5, 1, 1, 1, seed=0)
