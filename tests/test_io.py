"""Unit tests for graph persistence."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.generators import truncated_power_law_graph
from repro.graph.hetero import assign_random_edge_types
from repro.graph.io import (
    load_binary,
    load_edge_list,
    save_binary,
    save_edge_list,
)


@pytest.fixture
def graph():
    return truncated_power_law_graph(60, 2.0, 2, 15, seed=9)


class TestEdgeListRoundTrip:
    def test_plain(self, graph, tmp_path):
        path = tmp_path / "plain.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        np.testing.assert_array_equal(loaded.offsets, graph.offsets)
        np.testing.assert_array_equal(loaded.targets, graph.targets)

    def test_weighted(self, graph, tmp_path):
        weighted = assign_random_weights(graph, seed=1)
        path = tmp_path / "weighted.txt"
        save_edge_list(weighted, path)
        loaded = load_edge_list(path)
        assert loaded.is_weighted
        np.testing.assert_allclose(loaded.weights, weighted.weights)

    def test_typed(self, graph, tmp_path):
        typed = assign_random_edge_types(graph, 3, seed=2)
        path = tmp_path / "typed.txt"
        save_edge_list(typed, path)
        loaded = load_edge_list(path)
        assert loaded.is_heterogeneous
        np.testing.assert_array_equal(loaded.edge_types, typed.edge_types)

    def test_vertex_count_header(self, graph, tmp_path):
        # Isolated trailing vertices survive via the header.
        padded = from_edges(10, [(0, 1)])
        path = tmp_path / "padded.txt"
        save_edge_list(padded, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == 10

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "explicit.txt"
        path.write_text("0 1\n1 2\n")
        loaded = load_edge_list(path, num_vertices=7)
        assert loaded.num_vertices == 7

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 0\n")
        loaded = load_edge_list(path)
        assert loaded.num_edges == 2


class TestEdgeListErrors:
    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2.0 3 4\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("zero one\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_empty_without_count(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)


class TestBinaryRoundTrip:
    def test_plain(self, graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_binary(graph, path)
        assert load_binary(path) == graph

    def test_full_featured(self, graph, tmp_path):
        rich = assign_random_edge_types(
            assign_random_weights(graph, seed=1), 4, seed=2
        )
        path = tmp_path / "rich.npz"
        save_binary(rich, path)
        loaded = load_binary(path)
        assert loaded == rich

    def test_undirected_flag_preserved(self, tmp_path):
        graph = from_edges(3, [(0, 1), (1, 2)], undirected=True)
        path = tmp_path / "undirected.npz"
        save_binary(graph, path)
        assert load_binary(path).is_undirected

    def test_missing_arrays(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, offsets=np.array([0, 1]))
        with pytest.raises(GraphFormatError):
            load_binary(path)
