"""Unit tests for inverse transform sampling."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph.builder import from_edges
from repro.sampling.its import VertexITSTables, its_sample_from_cdf

from tests.helpers import assert_matches_distribution, diamond_graph


class TestCDFStructure:
    def test_per_vertex_prefix_sums(self):
        graph = diamond_graph(weights=True)
        tables = VertexITSTables(graph)
        for vertex in range(graph.num_vertices):
            cdf = tables.cdf_of(vertex)
            expected = np.cumsum(graph.edge_weights(vertex))
            np.testing.assert_allclose(cdf, expected)

    def test_totals(self):
        graph = diamond_graph(weights=True)
        tables = VertexITSTables(graph)
        for vertex in range(graph.num_vertices):
            assert tables.total_static(vertex) == pytest.approx(
                graph.total_out_weight(vertex)
            )
        np.testing.assert_allclose(
            tables.totals,
            [graph.total_out_weight(v) for v in range(4)],
        )

    def test_empty_vertex(self):
        graph = from_edges(3, [(0, 1)])
        tables = VertexITSTables(graph)
        assert tables.total_static(2) == 0.0


class TestSampling:
    def test_scalar_distribution(self):
        graph = diamond_graph(weights=True)
        tables = VertexITSTables(graph)
        rng = np.random.default_rng(0)
        start, _ = graph.edge_range(1)
        samples = [tables.sample(1, rng) - start for _ in range(10_000)]
        assert_matches_distribution(samples, graph.edge_weights(1))

    def test_batch_distribution(self):
        graph = diamond_graph(weights=True)
        tables = VertexITSTables(graph)
        rng = np.random.default_rng(1)
        vertices = np.full(30_000, 2, dtype=np.int64)
        start, _ = graph.edge_range(2)
        samples = tables.sample_batch(vertices, rng) - start
        assert_matches_distribution(samples, graph.edge_weights(2))

    def test_batch_mixed_vertices_in_range(self):
        graph = diamond_graph()
        tables = VertexITSTables(graph)
        rng = np.random.default_rng(2)
        vertices = rng.integers(0, 4, size=5000)
        edges = tables.sample_batch(vertices, rng)
        starts = graph.offsets[vertices]
        ends = graph.offsets[vertices + 1]
        assert np.all((edges >= starts) & (edges < ends))

    def test_batch_empty_input(self):
        tables = VertexITSTables(diamond_graph())
        rng = np.random.default_rng(3)
        assert tables.sample_batch(np.array([], dtype=np.int64), rng).size == 0

    def test_zero_weight_edge_never_sampled(self):
        graph = from_edges(4, [(0, 1), (0, 2), (0, 3)])
        tables = VertexITSTables(graph, np.array([1.0, 0.0, 2.0]))
        rng = np.random.default_rng(4)
        samples = [tables.sample(0, rng) for _ in range(5000)]
        assert 1 not in set(samples)  # flat index of the zero edge

    def test_dead_end_errors(self):
        graph = from_edges(3, [(0, 1)])
        tables = VertexITSTables(graph)
        rng = np.random.default_rng(5)
        with pytest.raises(SamplingError):
            tables.sample(2, rng)
        with pytest.raises(SamplingError):
            tables.sample_batch(np.array([2]), rng)

    def test_misaligned_weights(self):
        with pytest.raises(SamplingError):
            VertexITSTables(diamond_graph(), np.ones(2))

    def test_negative_weights(self):
        graph = from_edges(2, [(0, 1)])
        with pytest.raises(SamplingError):
            VertexITSTables(graph, np.array([-2.0]))


class TestSampleFromCDF:
    def test_distribution(self):
        cdf = np.cumsum([1.0, 4.0, 5.0])
        rng = np.random.default_rng(6)
        samples = [its_sample_from_cdf(cdf, rng) for _ in range(20_000)]
        assert_matches_distribution(samples, np.array([1.0, 4.0, 5.0]))

    def test_zero_total(self):
        with pytest.raises(SamplingError):
            its_sample_from_cdf(np.zeros(3), np.random.default_rng(0))


class TestGlobalCDFMatchesStepped:
    """The global-searchsorted ``sample_batch`` against the lane-stepped
    reference search it replaced (satellite of the kernel-fusion PR)."""

    def test_edge_for_edge_agreement_fixed_seed(self):
        from repro.graph.builder import assign_random_weights
        from repro.graph.generators import uniform_degree_graph

        graph = uniform_degree_graph(200, 8, seed=3, undirected=True)
        graph = assign_random_weights(graph, seed=4)
        tables = VertexITSTables(graph)
        vertices = np.random.default_rng(10).integers(0, 200, size=50_000)
        # Both implementations consume exactly one rng.random(n) call,
        # so identical seeds must give identical draws and — up to the
        # shared clamping rule — identical edges.
        new = tables.sample_batch(vertices, np.random.default_rng(9))
        old = tables._sample_batch_stepped(vertices, np.random.default_rng(9))
        np.testing.assert_array_equal(new, old)

    def test_edge_for_edge_agreement_unweighted(self):
        graph = diamond_graph()
        tables = VertexITSTables(graph)
        vertices = np.random.default_rng(11).integers(0, 4, size=20_000)
        new = tables.sample_batch(vertices, np.random.default_rng(12))
        old = tables._sample_batch_stepped(vertices, np.random.default_rng(12))
        np.testing.assert_array_equal(new, old)

    def test_same_error_on_dead_end(self):
        graph = from_edges(3, [(0, 1)])
        tables = VertexITSTables(graph)
        for method in (tables.sample_batch, tables._sample_batch_stepped):
            with pytest.raises(SamplingError, match="no out-edges"):
                method(np.array([0, 2]), np.random.default_rng(13))

    def test_same_error_on_all_zero_distribution(self):
        graph = from_edges(2, [(0, 1)])
        tables = VertexITSTables(graph, np.array([0.0]))
        for method in (tables.sample_batch, tables._sample_batch_stepped):
            with pytest.raises(SamplingError, match="all-zero"):
                method(np.array([0]), np.random.default_rng(14))

    def test_dead_end_reported_before_zero_mass(self):
        # A batch containing both failure modes reports the dead end,
        # matching the reference implementation's check order.
        graph = from_edges(3, [(0, 1)])
        tables = VertexITSTables(graph, np.array([0.0]))
        for method in (tables.sample_batch, tables._sample_batch_stepped):
            with pytest.raises(SamplingError, match="no out-edges"):
                method(np.array([0, 2]), np.random.default_rng(15))


def test_its_and_alias_agree():
    """Both static samplers draw from the same law."""
    from repro.sampling.alias import VertexAliasTables

    graph = diamond_graph(weights=True)
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(8)
    alias = VertexAliasTables(graph)
    its = VertexITSTables(graph)
    start, _ = graph.edge_range(1)
    alias_counts = np.bincount(
        alias.sample_batch(np.full(30_000, 1), rng_a) - start, minlength=3
    )
    its_counts = np.bincount(
        its.sample_batch(np.full(30_000, 1), rng_b) - start, minlength=3
    )
    np.testing.assert_allclose(alias_counts, its_counts, rtol=0.1)
