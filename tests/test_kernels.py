"""Direct unit tests for the vectorised rejection kernels."""

import numpy as np
import pytest

from repro.core.kernels import (
    TrialOutcome,
    batch_trial_round,
    full_scan_distribution,
    full_scan_mass,
)
from repro.core.program import WalkerProgram
from repro.core.walker import WalkerSet
from repro.graph.builder import from_edges
from repro.sampling.alias import VertexAliasTables
from repro.sampling.rejection import SamplingCounters

from tests.helpers import assert_matches_distribution


class HalfAndOne(WalkerProgram):
    """Pd = 0.5 on even-target edges, 1.0 on odd-target edges."""

    dynamic = True
    supports_batch = True

    def edge_dynamic_comp(self, graph, walker, edge_index, query_result=None):
        return 0.5 if graph.targets[edge_index] % 2 == 0 else 1.0

    def batch_dynamic_comp(self, graph, walkers, walker_ids, candidate_edges):
        return np.where(graph.targets[candidate_edges] % 2 == 0, 0.5, 1.0)


@pytest.fixture
def setup():
    graph = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    tables = VertexAliasTables(graph)
    walkers = WalkerSet(np.zeros(6, dtype=np.int64))
    return graph, tables, walkers


class TestBatchTrialRound:
    def test_outcome_alignment(self, setup):
        graph, tables, walkers = setup
        counters = SamplingCounters()
        outcome = batch_trial_round(
            graph,
            tables,
            HalfAndOne(),
            walkers,
            np.arange(6),
            np.ones(5),
            np.zeros(5),
            np.random.default_rng(0),
            counters,
        )
        assert isinstance(outcome, TrialOutcome)
        assert outcome.accepted.shape == (6,)
        assert outcome.edges.shape == (6,)
        # Rejected lanes carry -1; accepted lanes carry a valid edge.
        for lane in range(6):
            if outcome.accepted[lane]:
                assert 0 <= outcome.edges[lane] < graph.num_edges
            else:
                assert outcome.edges[lane] == -1
        assert counters.trials == 6
        assert counters.accepts == int(outcome.accepted.sum())

    def test_sampled_law_over_many_rounds(self, setup):
        graph, tables, walkers = setup
        rng = np.random.default_rng(1)
        counters = SamplingCounters()
        accepted_targets = []
        ids = np.arange(6)
        while len(accepted_targets) < 20_000:
            outcome = batch_trial_round(
                graph, tables, HalfAndOne(), walkers, ids,
                np.ones(5), np.zeros(5), rng, counters,
            )
            accepted_targets.extend(
                graph.targets[outcome.edges[outcome.accepted]].tolist()
            )
        # Targets 1..4; Pd: 1 for odd (1, 3), 0.5 for even (2, 4).
        law = np.array([0.0, 1.0, 0.5, 1.0, 0.5])
        assert_matches_distribution(accepted_targets, law)

    def test_lower_bound_pre_accepts_everything_at_envelope(self, setup):
        graph, tables, walkers = setup
        counters = SamplingCounters()
        outcome = batch_trial_round(
            graph, tables, HalfAndOne(), walkers, np.arange(6),
            np.full(5, 0.5), np.full(5, 0.5),  # lower == upper
            np.random.default_rng(2), counters,
        )
        assert outcome.accepted.all()
        assert counters.pd_evaluations == 0
        assert counters.pre_accepts == 6


class TestFullScan:
    def test_distribution_and_count(self, setup):
        graph, tables, walkers = setup
        mass, evaluations = full_scan_distribution(
            graph, tables, HalfAndOne(), walkers, 0
        )
        assert evaluations == 4
        np.testing.assert_allclose(mass, [1.0, 0.5, 1.0, 0.5])
        total, evaluations2 = full_scan_mass(
            graph, tables, HalfAndOne(), walkers, 0
        )
        assert total == pytest.approx(3.0)
        assert evaluations2 == 4

    def test_zero_static_edges_skipped(self):
        graph = from_edges(3, [(0, 1), (0, 2)])
        tables = VertexAliasTables(graph, np.array([0.0, 2.0]))
        walkers = WalkerSet(np.zeros(1, dtype=np.int64))
        mass, evaluations = full_scan_distribution(
            graph, tables, HalfAndOne(), walkers, 0
        )
        assert evaluations == 1  # the zero-mass edge was not evaluated
        assert mass[0] == 0.0
