"""Tests for the :mod:`repro.lint` static analyzer.

Fixture files under ``tests/lint_fixtures/`` carry their expectations
inline: a trailing ``# expect: RKxxx`` comment on a line declares
exactly the findings that must fire there, and the parametrized test
asserts *set equality* — so every unmarked line in a fixture is a
negative test at the same time.
"""

import argparse
import io
import json
import re
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    Baseline,
    DEFAULT_RULES,
    FLOW_RULES,
    Linter,
    LintReport,
    Severity,
    rule_catalog,
)
from repro.lint.cli import DEFAULT_BASELINE_NAME, add_lint_arguments, run_lint

TESTS_DIR = Path(__file__).resolve().parent
FIXTURE_DIR = TESTS_DIR / "lint_fixtures"
REPO_ROOT = TESTS_DIR.parent
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

_PATH_HEADER = re.compile(r"#\s*lint-fixture-path:\s*(\S+)")
_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+?)\s*$")

# Deliberately bad sources used by the unit tests below (kept as
# strings so the linter never sees them as real code).
BAD_RNG = (
    "import random\n"
    "\n"
    "\n"
    "def draw(items):\n"
    "    first = random.choice(items)\n"
    "    second = random.random()\n"
    "    return first, second\n"
)
WARN_ONLY = (
    "def accumulate(x, acc=[]):\n"
    "    acc.append(x)\n"
    "    return acc\n"
)


def _load_fixture(path):
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    rel_path = f"tests/lint_fixtures/{path.name}"
    if lines:
        header = _PATH_HEADER.search(lines[0])
        if header:
            rel_path = header.group(1)
    expected = set()
    for lineno, line in enumerate(lines, start=1):
        match = _EXPECT.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    expected.add((lineno, rule_id))
    return source, rel_path, expected


def _parse_args(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


class TestFixtures:
    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
    def test_fixture_findings_match_expectations(self, fixture):
        source, rel_path, expected = _load_fixture(fixture)
        findings = Linter().lint_source(source, str(fixture), rel_path=rel_path)
        actual = {(f.line, f.rule_id) for f in findings}
        assert actual == expected

    def test_every_rule_has_a_positive_fixture(self):
        covered = set()
        for fixture in FIXTURES:
            _, _, expected = _load_fixture(fixture)
            covered |= {rule_id for _, rule_id in expected}
        all_ids = {rule.rule_id for rule in DEFAULT_RULES} | {"RK001"}
        assert covered == all_ids

    def test_clean_fixtures_exist_per_rule_group(self):
        # Fixtures with an empty expectation set assert zero findings
        # over code that exercises the rule's subject matter — the
        # negative half of the contract.
        clean = [p.stem for p in FIXTURES if not _load_fixture(p)[2]]
        assert {
            "rng_clean",
            "simtime_clean_outside",
            "simtime_clean_allowlisted",
            "obs_clock_clean",
            "obs_clock_clean_outside",
            "retry_clean",
            "process_clean",
            "generic_clean",
        } <= set(clean)


class TestSuppressions:
    def test_inline_disable_absorbs_finding(self):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def f(xs):\n"
            "    return random.choice(xs)"
            "  # lint: disable=RK101 -- sanctioned test hook\n"
        )
        assert Linter().lint_source(source, "mod.py") == []

    def test_stale_disable_reports_rk001(self):
        source = "def f():\n    return 1  # lint: disable=RK101 -- stale\n"
        findings = Linter().lint_source(source, "mod.py")
        assert [(f.rule_id, f.line, f.severity) for f in findings] == [
            ("RK001", 2, Severity.INFO)
        ]

    def test_unknown_rule_in_disable_raises(self):
        source = "x = 1  # lint: disable=RK999 -- no such rule\n"
        with pytest.raises(LintError, match="unknown rule"):
            Linter().lint_source(source, "mod.py")

    def test_malformed_disable_raises(self):
        source = "x = 1  # lint: disable=\n"
        with pytest.raises(LintError, match="malformed suppression"):
            Linter().lint_source(source, "mod.py")

    def test_disable_inside_string_is_inert(self):
        # Only real COMMENT tokens register; docs quoting the syntax
        # must neither suppress nor crash on unknown ids.
        source = 'DOC = "# lint: disable=RK999"\n'
        assert Linter().lint_source(source, "mod.py") == []

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            Linter().lint_source("def f(:\n", "mod.py")


class TestBaseline:
    def test_apply_absorbs_first_n_findings(self):
        findings = Linter().lint_source(BAD_RNG, "pkg/mod.py")
        assert [f.rule_id for f in findings] == ["RK101", "RK101"]
        applied = Baseline({"pkg/mod.py": {"RK101": 1}}).apply(findings)
        flags = [f.baselined for f in sorted(applied, key=lambda f: f.line)]
        assert flags == [True, False]

    def test_roundtrip(self, tmp_path):
        findings = Linter().lint_source(BAD_RNG, "pkg/mod.py")
        target = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(target))
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        loaded = Baseline.load(str(target))
        assert loaded.entries == {"pkg/mod.py": {"RK101": 2}}

    def test_load_rejects_wrong_version(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(LintError):
            Baseline.load(str(target))

    def test_baselined_findings_never_block(self):
        findings = Linter().lint_source(BAD_RNG, "pkg/mod.py")
        absorbed = Baseline({"pkg/mod.py": {"RK101": 2}}).apply(findings)
        report = LintReport(findings=absorbed, files_checked=1)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0
        # Still reported, though: the format keeps them visible.
        assert "2 baselined" in report.format()


class TestReportPolicy:
    def test_errors_block_without_strict(self):
        findings = Linter().lint_source(BAD_RNG, "mod.py")
        report = LintReport(findings=findings, files_checked=1)
        assert report.exit_code() == 1

    def test_warnings_block_only_in_strict(self):
        findings = Linter().lint_source(WARN_ONLY, "mod.py")
        assert {f.severity for f in findings} == {Severity.WARNING}
        report = LintReport(findings=findings, files_checked=1)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_rule_catalog_lists_every_rule(self):
        ids = {row[0] for row in rule_catalog()}
        expected = (
            {rule.rule_id for rule in DEFAULT_RULES}
            | {spec.rule_id for spec in FLOW_RULES}
            | {"RK001", "RK002"}
        )
        assert ids == expected


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "good.py"
        good.write_text("def f(x):\n    return x\n")
        assert run_lint(_parse_args([str(good)]), stdout=io.StringIO()) == 0

    def test_findings_exit_one(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_RNG)
        out = io.StringIO()
        code = run_lint(_parse_args([str(bad), "--no-baseline"]), stdout=out)
        assert code == 1
        assert "RK101" in out.getvalue()
        assert "FAILED" in out.getvalue()

    def test_update_baseline_then_clean_then_regression(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_RNG)

        code = run_lint(
            _parse_args([str(bad), "--update-baseline"]), stdout=io.StringIO()
        )
        assert code == 0
        baseline_file = tmp_path / DEFAULT_BASELINE_NAME
        assert baseline_file.exists()

        # Grandfathered: reported but not fatal.
        assert run_lint(_parse_args([str(bad)]), stdout=io.StringIO()) == 0

        # A *new* violation in the same file exceeds the budget.
        bad.write_text(BAD_RNG + "\nEXTRA = random.random()\n")
        assert run_lint(_parse_args([str(bad)]), stdout=io.StringIO()) == 1

    def test_infrastructure_errors_exit_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = run_lint(_parse_args([str(tmp_path / "nope.txt")]), stdout=out)
        assert code == 2
        assert "lint error" in out.getvalue()

        broken = tmp_path / "broken.py"
        broken.write_text("x = 1  # lint: disable=RK999 -- nope\n")
        assert run_lint(_parse_args([str(broken)]), stdout=io.StringIO()) == 2

    def test_rules_listing(self):
        out = io.StringIO()
        assert run_lint(_parse_args(["--rules"]), stdout=out) == 0
        listing = out.getvalue()
        for rule in DEFAULT_RULES:
            assert rule.rule_id in listing


class TestSelfCheck:
    """The analyzer must hold its own codebase to its own standard."""

    def test_src_repro_is_clean(self):
        baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
        baseline = (
            Baseline.load(str(baseline_path)) if baseline_path.exists() else None
        )
        linter = Linter(baseline=baseline, root=str(REPO_ROOT))
        report = linter.lint_paths([str(REPO_ROOT / "src" / "repro")])
        assert report.files_checked > 50
        assert report.blocking(strict=True) == []

    def test_tests_and_examples_are_clean(self):
        linter = Linter(root=str(REPO_ROOT), exclude=(str(FIXTURE_DIR),))
        paths = [str(TESTS_DIR)]
        for extra in ("examples", "benchmarks"):
            if (REPO_ROOT / extra).is_dir():
                paths.append(str(REPO_ROOT / extra))
        report = linter.lint_paths(paths)
        assert report.blocking(strict=True) == []
