"""Tests for :mod:`repro.lint.flow` — the whole-program analysis layer.

The flow fixture *packages* under ``tests/lint_fixtures/flow_*/`` are
linted end-to-end through :meth:`Linter.lint_paths` (syntactic rules +
flow rules + suppressions), with inline ``# expect:`` markers asserted
as set equality — every unmarked line doubles as a negative test.
Each package is built so the flagged flows are invisible to the
syntactic layer (creation and escape in different statements or
modules), which is the supersession contract: RK110/RK210/RK106/RK310
catch what RK10x/RK201/RK30x cannot.
"""

import argparse
import io
import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Linter,
    Severity,
    render_rule_catalog_markdown,
)
from repro.lint.cli import add_lint_arguments, run_lint
from repro.lint.flow import (
    FLOW_RULES,
    FlowCache,
    ProjectIndex,
    build_call_graph,
    run_flow_rules,
)
from repro.lint.flow.cache import content_hash
from repro.lint.flow.ir import collect_aliases, module_name_for

TESTS_DIR = Path(__file__).resolve().parent
FIXTURE_DIR = TESTS_DIR / "lint_fixtures"
FLOW_FIXTURE_DIRS = sorted(
    d for d in FIXTURE_DIR.glob("flow_rk*") if d.is_dir()
)
FLOW_RULE_IDS = {spec.rule_id for spec in FLOW_RULES}

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+?)\s*$")


def _expected_in(directory: Path) -> set[tuple[str, int, str]]:
    expected = set()
    for path in sorted(directory.rglob("*.py")):
        rel = path.relative_to(FIXTURE_DIR).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT.search(line)
            if match:
                for rule_id in match.group(1).split(","):
                    rule_id = rule_id.strip()
                    if rule_id:
                        expected.add((rel, lineno, rule_id))
    return expected


def _lint_dir(directory: Path, **kwargs) -> set[tuple[str, int, str]]:
    linter = Linter(root=str(FIXTURE_DIR), **kwargs)
    report = linter.lint_paths([str(directory)])
    actual = set()
    for f in report.findings:
        rel = Path(f.path).resolve().relative_to(FIXTURE_DIR).as_posix()
        actual.add((rel, f.line, f.rule_id))
    return actual


def _parse_args(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


def _build_index(directory: Path) -> ProjectIndex:
    files = []
    for path in sorted(directory.rglob("*.py")):
        rel = path.relative_to(FIXTURE_DIR).as_posix()
        files.append((str(path), rel, path.read_text(), None))
    return ProjectIndex.build(files)


class TestFlowFixtures:
    @pytest.mark.parametrize(
        "fixture_dir", FLOW_FIXTURE_DIRS, ids=lambda p: p.name
    )
    def test_fixture_findings_match_expectations(self, fixture_dir):
        assert _lint_dir(fixture_dir) == _expected_in(fixture_dir)

    @pytest.mark.parametrize(
        "fixture_dir", FLOW_FIXTURE_DIRS, ids=lambda p: p.name
    )
    def test_syntactic_layer_misses_the_flow_findings(self, fixture_dir):
        # The supersession contract: with the flow layer off, none of
        # the flow-rule expectations fire — each fixture's flagged
        # lines are invisible to the per-file rules.
        syntactic = _lint_dir(fixture_dir, flow=False)
        flow_expected = {
            e for e in _expected_in(fixture_dir) if e[2] in FLOW_RULE_IDS
        }
        assert flow_expected  # every fixture dir carries a positive
        assert syntactic & flow_expected == set()

    def test_every_flow_rule_has_positive_and_negative_coverage(self):
        covered = set()
        for directory in FLOW_FIXTURE_DIRS:
            covered |= {rule for _, _, rule in _expected_in(directory)}
        assert FLOW_RULE_IDS <= covered


class TestProjectIndex:
    def test_module_name_for_walks_init_chain(self):
        tree = {"pkg/__init__.py", "pkg/sub/__init__.py"}
        exists = lambda p: p.replace("\\", "/") in tree  # noqa: E731
        assert module_name_for("pkg/sub/mod.py", exists) == ("pkg.sub.mod", False)
        assert module_name_for("pkg/sub/__init__.py", exists) == ("pkg.sub", True)
        assert module_name_for("scripts/tool.py", exists) == ("tool", False)

    def test_relative_import_aliases(self):
        import ast

        tree = ast.parse("from .network import Network\nfrom . import wire\n")
        aliases = collect_aliases(tree, "repro.cluster.engine", False)
        assert aliases["Network"] == "repro.cluster.network.Network"
        assert aliases["wire"] == "repro.cluster.wire"

    def test_import_as_aliases(self):
        import ast

        tree = ast.parse(
            "import numpy as np\nfrom flow_project import util as helpers\n"
        )
        aliases = collect_aliases(tree, "mod", False)
        assert aliases["np"] == "numpy"
        assert aliases["helpers"] == "flow_project.util"

    def test_resolve_through_reexport_chain(self):
        index = _build_index(FIXTURE_DIR / "flow_project")
        # flow_project.Engine re-exports flow_project.core.Engine.
        assert index.resolve("flow_project.Engine") == (
            "class",
            ("flow_project.core", "Engine"),
        )
        # The `import util as helpers_mod` alias inside core.py.
        assert index.resolve("flow_project.util.shared_constant") == (
            "func",
            "flow_project.util:shared_constant",
        )

    def test_method_resolution_through_hierarchy(self):
        index = _build_index(FIXTURE_DIR / "flow_project")
        engine = ("flow_project.core", "Engine")
        # Overridden method resolves to the subclass...
        assert index.find_method(engine, "helper") == (
            "flow_project.core:Engine.helper"
        )
        # ...inherited method to the base.
        assert index.find_method(engine, "run") == (
            "flow_project.core:Base.run"
        )


class TestCallGraph:
    def test_edges(self):
        index = _build_index(FIXTURE_DIR / "flow_project")
        edges = build_call_graph(index)
        # Typed-local method call, resolved through the alias chain
        # flow_project.Engine -> core.Engine, then the MRO to Base.run.
        assert "flow_project.core:Base.run" in edges[
            "flow_project.util:build_and_run"
        ]
        # self.method() through the hierarchy.
        assert "flow_project.core:Base.helper" in edges[
            "flow_project.core:Base.run"
        ]
        # Dotted module alias call.
        assert "flow_project.util:shared_constant" in edges[
            "flow_project.core:Base.helper"
        ]


class TestFlowCache:
    def test_warm_run_reuses_summaries(self, tmp_path):
        cache_path = str(tmp_path / "cache.json")
        linter = Linter(root=str(FIXTURE_DIR), cache_path=cache_path)
        cold = linter.lint_paths([str(FIXTURE_DIR / "flow_rk110")])
        assert cold.flow_cache_misses > 0 and cold.flow_cache_hits == 0

        warm_linter = Linter(root=str(FIXTURE_DIR), cache_path=cache_path)
        warm = warm_linter.lint_paths([str(FIXTURE_DIR / "flow_rk110")])
        assert warm.flow_cache_misses == 0
        assert warm.flow_cache_hits == cold.flow_cache_misses
        assert {(f.line, f.rule_id) for f in warm.findings} == {
            (f.line, f.rule_id) for f in cold.findings
        }

    def test_content_hash_invalidates(self, tmp_path):
        cache = FlowCache(str(tmp_path / "c.json"))
        cache.put_summary("k", content_hash("a = 1\n"), {"rel_path": "k"})
        assert cache.get_summary("k", content_hash("a = 1\n")) is not None
        assert cache.get_summary("k", content_hash("a = 2\n")) is None

    def test_corrupt_cache_starts_fresh(self, tmp_path):
        target = tmp_path / "c.json"
        target.write_text("{not json")
        cache = FlowCache.load(str(target))
        assert cache.entries == {}

    def test_changed_only_scopes_reporting(self, tmp_path):
        # Two files, each with a violation; after a cached run, editing
        # one file scopes --changed-only reporting to it alone.
        pkg = tmp_path / "proj"
        pkg.mkdir()
        source = (
            "import numpy as np\n"
            "import pickle\n"
            "\n"
            "\n"
            "def leak(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return pickle.dumps(rng)\n"
        )
        (pkg / "one.py").write_text(source)
        (pkg / "two.py").write_text(source)
        cache_path = str(tmp_path / "cache.json")

        first = Linter(root=str(tmp_path), cache_path=cache_path).lint_paths(
            [str(pkg)]
        )
        assert {Path(f.path).name for f in first.findings} == {
            "one.py", "two.py"
        }

        (pkg / "two.py").write_text(source + "\n# touched\n")
        second = Linter(
            root=str(tmp_path), cache_path=cache_path, changed_only=True
        ).lint_paths([str(pkg)])
        assert {Path(f.path).name for f in second.findings} == {"two.py"}


class TestBaselineDrift:
    BAD = "import random\n\n\ndef f(xs):\n    return random.choice(xs)\n"

    def test_rk002_reported_for_overallocated_entry(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = Baseline({str(bad): {"RK101": 3}})
        report = Linter(baseline=baseline, flow=False).lint_paths([str(bad)])
        drift = [f for f in report.findings if f.rule_id == "RK002"]
        assert len(drift) == 1
        assert drift[0].severity == Severity.INFO
        assert "2 more RK101" in drift[0].message
        # INFO blocks only under --strict.
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_no_rk002_when_budget_fully_used(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = Baseline({str(bad): {"RK101": 1}})
        report = Linter(baseline=baseline, flow=False).lint_paths([str(bad)])
        assert [f.rule_id for f in report.findings] == ["RK101"]

    def test_unscanned_existing_file_not_judged(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        other = tmp_path / "other.py"
        other.write_text("x = 1\n")
        baseline = Baseline(
            {str(bad): {"RK101": 1}, str(other): {"RK101": 5}}
        )
        # other.py exists but is not part of this scan: no drift call.
        report = Linter(baseline=baseline, flow=False).lint_paths([str(bad)])
        assert [f.rule_id for f in report.findings] == ["RK101"]

    def test_deleted_file_entry_is_drift(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        gone = tmp_path / "gone.py"  # never created
        baseline = Baseline(
            {str(bad): {"RK101": 1}, str(gone): {"RK101": 2}}
        )
        report = Linter(baseline=baseline, flow=False).lint_paths([str(bad)])
        drift = [f for f in report.findings if f.rule_id == "RK002"]
        assert len(drift) == 1 and drift[0].path == str(gone)


class TestOutputFormats:
    BAD = (
        "import numpy as np\n"
        "import pickle\n"
        "\n"
        "\n"
        "def leak(seed):\n"
        "    rng = np.random.default_rng(seed)\n"
        "    return pickle.dumps(rng)\n"
    )

    def _write_bad(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        return bad

    def test_json_format(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_bad(tmp_path)
        target = tmp_path / "report.json"
        out = io.StringIO()
        code = run_lint(
            _parse_args(
                [str(bad), "--no-baseline", "--no-cache",
                 "--format", "json", "--output", str(target)]
            ),
            stdout=out,
        )
        assert code == 1
        payload = json.loads(target.read_text())
        assert payload["files_checked"] == 1
        rules = {f["rule_id"] for f in payload["findings"]}
        assert "RK110" in rules
        assert payload["flow_seconds"] is not None

    def test_sarif_format(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_bad(tmp_path)
        target = tmp_path / "report.sarif"
        run_lint(
            _parse_args(
                [str(bad), "--no-baseline", "--no-cache",
                 "--format", "sarif", "--output", str(target)]
            ),
            stdout=io.StringIO(),
        )
        payload = json.loads(target.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RK110", "RK210", "RK106", "RK310", "RK002"} <= rule_ids
        results = run["results"]
        assert any(r["ruleId"] == "RK110" for r in results)
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1

    def test_flow_budget_exceeded_exits_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_bad(tmp_path)
        out = io.StringIO()
        code = run_lint(
            _parse_args(
                [str(bad), "--no-baseline", "--no-cache",
                 "--flow-budget", "0.0"]
            ),
            stdout=out,
        )
        assert code == 2
        assert "over the" in out.getvalue()

    def test_no_flow_skips_flow_rules_and_budget(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_bad(tmp_path)
        out = io.StringIO()
        code = run_lint(
            _parse_args(
                [str(bad), "--no-baseline", "--no-flow",
                 "--flow-budget", "0.0"]
            ),
            stdout=out,
        )
        assert code == 0  # RK110 needs the flow layer; budget ignored
        assert "RK110" not in out.getvalue()


class TestDocsSync:
    def test_readme_rule_catalog_matches_live_catalog(self):
        readme = (TESTS_DIR.parent / "README.md").read_text()
        begin = "<!-- rule-catalog:begin -->\n"
        end = "<!-- rule-catalog:end -->"
        assert begin in readme and end in readme
        table = readme.split(begin, 1)[1].split(end, 1)[0]
        assert table == render_rule_catalog_markdown(), (
            "README rule-catalog table is stale; regenerate it with "
            "repro.lint.render_rule_catalog_markdown()"
        )


class TestSuppressionAnchoring:
    def test_flow_finding_suppressed_at_sink_statement(self, tmp_path):
        pkg = tmp_path / "p"
        pkg.mkdir()
        (pkg / "mod.py").write_text(textwrap.dedent("""\
            import numpy as np
            import pickle


            def leak(seed):
                rng = np.random.default_rng(seed)
                return pickle.dumps(
                    rng,
                )  # lint: disable=RK110 -- fixture: checkpoint format v0
        """))
        report = Linter(root=str(tmp_path)).lint_paths([str(pkg)])
        assert report.findings == []

    def test_multiline_statement_anchor_via_source(self):
        source = textwrap.dedent("""\
            import random


            def pick(items):
                chosen = random.sample(
                    items,
                    2,
                )  # lint: disable=RK101 -- fixture: anchored
                return chosen
        """)
        assert Linter().lint_source(source, "mod.py") == []

    def test_decorator_anchor_via_source(self):
        source = textwrap.dedent("""\
            def deco(fn):
                return fn


            # lint: disable=RK401 -- fixture: anchored above decorator
            @deco
            def f(acc=[]):
                return acc
        """)
        assert Linter().lint_source(source, "mod.py") == []


class TestTaintEngineUnits:
    def _index_from(self, tmp_path, files):
        entries = []
        for rel, src in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(src)
            entries.append((str(path), rel, src, None))
        return ProjectIndex.build(entries)

    def test_kwarg_flow_reaches_sink(self, tmp_path):
        index = self._index_from(tmp_path, {
            "m.py": textwrap.dedent("""\
                import numpy as np
                import pickle


                def save(payload=None):
                    return pickle.dumps(payload)


                def leak(seed):
                    rng = np.random.default_rng(seed)
                    return save(payload=rng)
                """),
        })
        findings = run_flow_rules(index, FLOW_RULES)
        assert [(f.rule_id, f.line) for f in findings] == [("RK110", 6)]

    def test_sanitizer_clears_taint(self, tmp_path):
        index = self._index_from(tmp_path, {
            "m.py": textwrap.dedent("""\
                import numpy as np
                import pickle


                def leak(seed):
                    rng = np.random.default_rng(seed)
                    return pickle.dumps(rng.bit_generator.state)
                """),
        })
        assert run_flow_rules(index, FLOW_RULES) == []

    def test_container_append_taints_payload(self, tmp_path):
        index = self._index_from(tmp_path, {
            "m.py": textwrap.dedent("""\
                import numpy as np
                import pickle


                def leak(seed):
                    batch = []
                    batch.append(np.random.default_rng(seed))
                    return pickle.dumps(batch)
                """),
        })
        assert [(f.rule_id, f.line) for f in
                run_flow_rules(index, FLOW_RULES)] == [("RK110", 8)]
