"""Unit and integration tests for Meta-path walks."""

import numpy as np
import pytest

from repro.algorithms import MetaPathWalk, random_schemes
from repro.algorithms.metapath import SCHEME_STATE
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.walker import WalkerSet
from repro.errors import ProgramError
from repro.graph.builder import from_edges
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types


@pytest.fixture
def typed_graph():
    graph = uniform_degree_graph(150, 6, seed=0, undirected=True)
    return assign_random_edge_types(graph, 3, seed=1)


class TestConstruction:
    def test_requires_schemes(self):
        with pytest.raises(ProgramError):
            MetaPathWalk([])
        with pytest.raises(ProgramError):
            MetaPathWalk([[0, 1], []])

    def test_required_type_cycles(self):
        program = MetaPathWalk([[3, 1, 4]])
        assert [program.required_type(0, k) for k in range(7)] == [
            3, 1, 4, 3, 1, 4, 3,
        ]

    def test_requires_typed_graph(self):
        graph = uniform_degree_graph(10, 2, seed=0)
        program = MetaPathWalk([[0]])
        walkers = WalkerSet(np.zeros(3, dtype=np.int64))
        with pytest.raises(ProgramError):
            program.setup_walkers(graph, walkers, np.random.default_rng(0))

    def test_scheme_assignment_uniform(self, typed_graph):
        program = MetaPathWalk(random_schemes(4, 3, 3, seed=2))
        walkers = WalkerSet(np.zeros(4000, dtype=np.int64))
        program.setup_walkers(typed_graph, walkers, np.random.default_rng(3))
        counts = np.bincount(walkers.state(SCHEME_STATE), minlength=4)
        assert counts.min() > 800  # roughly uniform over 4 schemes


class TestDynamicComponent:
    def test_scalar_indicator(self, typed_graph):
        program = MetaPathWalk([[1, 2]])
        walkers = WalkerSet(np.zeros(1, dtype=np.int64))
        program.setup_walkers(typed_graph, walkers, np.random.default_rng(0))
        view = walkers.view(0)
        start, end = typed_graph.edge_range(0)
        for edge in range(start, end):
            expected = 1.0 if typed_graph.edge_types[edge] == 1 else 0.0
            assert program.edge_dynamic_comp(typed_graph, view, edge) == expected

    def test_batch_matches_scalar(self, typed_graph):
        program = MetaPathWalk(random_schemes(3, 4, 3, seed=4))
        walkers = WalkerSet(
            np.arange(20, dtype=np.int64) % typed_graph.num_vertices
        )
        program.setup_walkers(typed_graph, walkers, np.random.default_rng(5))
        walkers.steps[:] = np.arange(20) % 7  # varied step counters
        walker_ids = np.arange(20)
        edges = typed_graph.offsets[walkers.current[walker_ids]]
        batch = program.batch_dynamic_comp(
            typed_graph, walkers, walker_ids, edges
        )
        scalar = [
            program.edge_dynamic_comp(
                typed_graph, walkers.view(int(w)), int(e)
            )
            for w, e in zip(walker_ids, edges)
        ]
        np.testing.assert_array_equal(batch, scalar)

    def test_bounds(self, typed_graph):
        program = MetaPathWalk([[0]])
        assert np.all(program.upper_bound_array(typed_graph) == 1.0)
        assert np.all(program.lower_bound_array(typed_graph) == 0.0)


class TestWalkConformance:
    def test_paths_follow_schemes(self, typed_graph):
        schemes = random_schemes(5, 4, 3, seed=6)
        program = MetaPathWalk(schemes)
        config = WalkConfig(num_walkers=100, max_steps=8, record_paths=True, seed=7)
        engine = WalkEngine(typed_graph, program, config)
        result = engine.run()
        assignments = engine.walkers.state(SCHEME_STATE)
        for walker_id, path in enumerate(result.paths):
            scheme = schemes[int(assignments[walker_id])]
            for step, (source, target) in enumerate(zip(path[:-1], path[1:])):
                required = scheme[step % len(scheme)]
                edge = typed_graph.edge_index(int(source), int(target))
                # Some parallel edge of the right type must exist.
                start, count = typed_graph.edge_span_batch(
                    np.array([source]), np.array([target])
                )
                types = typed_graph.edge_types[
                    start[0] : start[0] + count[0]
                ]
                assert required in types

    def test_dead_end_when_no_eligible_type(self):
        # All edges type 0; scheme demands type 1 -> immediate dead end.
        graph = from_edges(3, [(0, 1), (1, 2), (2, 0)])
        typed = assign_random_edge_types(graph, 1, seed=0)  # all type 0
        program = MetaPathWalk([[1]])
        config = WalkConfig(num_walkers=3, max_steps=5, record_paths=True)
        result = WalkEngine(typed, program, config).run()
        assert result.stats.termination.by_dead_end == 3
        assert all(len(path) == 1 for path in result.paths)

    def test_alternating_types_walk(self):
        # Directed ring; the edge out of vertex i has type i % 2, so a
        # walker with scheme [0, 1] starting at 0 can traverse it.
        graph = from_edges(10, [(i, (i + 1) % 10) for i in range(10)])
        from repro.graph.csr import CSRGraph

        typed = CSRGraph(
            graph.offsets,
            graph.targets,
            edge_types=np.array([i % 2 for i in range(10)], dtype=np.int32),
        )
        program = MetaPathWalk([[0, 1]])
        config = WalkConfig(
            num_walkers=1,
            max_steps=6,
            record_paths=True,
            start_vertices=np.array([0]),
        )
        result = WalkEngine(typed, program, config).run()
        assert result.paths[0].tolist() == [0, 1, 2, 3, 4, 5, 6]


class TestRandomSchemes:
    def test_shapes(self):
        schemes = random_schemes(10, 5, 5, seed=0)
        assert len(schemes) == 10
        assert all(len(s) == 5 for s in schemes)
        assert all(0 <= t < 5 for s in schemes for t in s)

    def test_deterministic(self):
        assert random_schemes(3, 4, 5, seed=1) == random_schemes(3, 4, 5, seed=1)
        assert random_schemes(3, 4, 5, seed=1) != random_schemes(3, 4, 5, seed=2)
