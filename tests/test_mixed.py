"""Tests for the mixed (non-decoupled) node2vec ablation (Figure 8)."""

import numpy as np
import pytest

from repro.algorithms import Node2Vec
from repro.baselines import MixedNode2Vec
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import assign_power_law_weights, from_edges
from repro.graph.generators import uniform_degree_graph

from tests.helpers import (
    assert_matches_distribution,
    diamond_graph,
    exact_node2vec_law,
)


def weighted_test_graph():
    graph = uniform_degree_graph(60, 5, seed=0, undirected=True)
    return assign_power_law_weights(graph, seed=1, max_weight=16.0)


class TestLawInvariance:
    def test_mixed_law_equals_decoupled_law(self):
        """Folding the weight into Pd must not change the walk law —
        only its cost."""
        graph = diamond_graph(weights=True)
        config = WalkConfig(
            num_walkers=10_000,
            max_steps=2,
            record_paths=True,
            seed=2,
            start_vertices=np.zeros(10_000, dtype=np.int64),
        )
        mixed = WalkEngine(graph, MixedNode2Vec(0.5, 2.0), config).run()
        final_law = exact_node2vec_law  # alias for line length
        # Compare against exact enumeration of the biased walk.
        first = final_law(graph, 0, -1, 0.5, 2.0, True)
        joint = np.zeros(16)
        for middle in range(4):
            if first[middle] == 0:
                continue
            second = final_law(graph, middle, 0, 0.5, 2.0, True)
            joint[middle * 4 : middle * 4 + 4] = first[middle] * second
        samples = [
            int(p[1]) * 4 + int(p[2]) for p in mixed.paths if len(p) == 3
        ]
        assert_matches_distribution(samples, joint)


class TestCostStructure:
    def test_mixed_needs_more_trials_on_skewed_weights(self):
        graph = weighted_test_graph()
        config = WalkConfig(num_walkers=100, max_steps=10, seed=3)
        mixed = WalkEngine(graph, MixedNode2Vec(2.0, 0.5), config).run()
        decoupled = WalkEngine(
            graph, Node2Vec(2.0, 0.5, biased=True), config
        ).run()
        assert (
            mixed.stats.trials_per_step
            > 1.5 * decoupled.stats.trials_per_step
        )

    def test_mixed_trials_grow_with_weight_range(self):
        base = uniform_degree_graph(60, 5, seed=0, undirected=True)
        config = WalkConfig(num_walkers=100, max_steps=10, seed=4)
        trials = []
        for max_weight in (2.0, 32.0):
            graph = assign_power_law_weights(
                base, seed=1, max_weight=max_weight
            )
            result = WalkEngine(graph, MixedNode2Vec(2.0, 0.5), config).run()
            trials.append(result.stats.trials_per_step)
        assert trials[1] > 1.5 * trials[0]

    def test_decoupled_flat_in_weight_range(self):
        base = uniform_degree_graph(60, 5, seed=0, undirected=True)
        config = WalkConfig(num_walkers=100, max_steps=10, seed=5)
        trials = []
        for max_weight in (2.0, 32.0):
            graph = assign_power_law_weights(
                base, seed=1, max_weight=max_weight
            )
            result = WalkEngine(
                graph, Node2Vec(2.0, 0.5, biased=True), config
            ).run()
            trials.append(result.stats.trials_per_step)
        assert trials[1] < 1.3 * trials[0]


class TestBounds:
    def test_envelope_covers_max_weight(self):
        graph = from_edges(2, [(0, 1, 7.0), (1, 0, 7.0)])
        program = MixedNode2Vec(0.5, 1.0)  # max pd term = 2
        uppers = program.upper_bound_array(graph)
        assert uppers[0] == pytest.approx(14.0)

    def test_lower_bound_uses_min_weight(self):
        graph = from_edges(3, [(0, 1, 2.0), (0, 2, 8.0)])
        program = MixedNode2Vec(1.0, 2.0)  # floor pd term = 0.5
        lowers = program.lower_bound_array(graph)
        assert lowers[0] == pytest.approx(1.0)

    def test_no_outliers_declared(self):
        graph = diamond_graph(weights=True)
        program = MixedNode2Vec(0.25, 1.0)
        from repro.core.walker import WalkerSet

        walkers = WalkerSet(np.array([1]))
        walkers.previous[:] = 0
        assert program.batch_outliers(graph, walkers, np.array([0])) is None
        assert program.outlier_specs(graph, walkers.view(0)) == ()

    def test_unweighted_graph_degenerates_to_plain(self):
        graph = diamond_graph()
        program = MixedNode2Vec(2.0, 0.5)
        uppers = program.upper_bound_array(graph)
        assert np.all(uppers == 2.0)
