"""Equivalence and accounting tests for the fused multi-trial kernel.

Satellite coverage for the kernel-fusion PR: the fused
``batch_multi_trial_round`` must sample the *same law* as the scalar
``RejectionSampler`` and the single-trial ``batch_trial_round`` (checked
by chi-square against the exactly enumerated node2vec law, with outlier
folding both on and off), and its counters must add up identically in
expectation (trials, Pd evaluations, pre-accepts per accepted move).
"""

import numpy as np
import pytest

from repro.algorithms import Node2Vec
from repro.core.engine import WalkEngine, ZERO_MASS_GUARD_TRIALS
from repro.core.config import WalkConfig
from repro.core.kernels import (
    KernelScratch,
    MultiTrialOutcome,
    TRIAL_FUSION_MAX,
    TRIAL_FUSION_MIN,
    adaptive_trial_count,
    batch_multi_trial_round,
    batch_trial_round,
)
from repro.core.program import WalkerProgram
from repro.core.walker import WalkerSet
from repro.graph.builder import from_edges
from repro.sampling.alias import VertexAliasTables
from repro.sampling.rejection import RejectionSampler, SamplingCounters

from tests.helpers import (
    assert_matches_distribution,
    diamond_graph,
    exact_node2vec_law,
)

CURRENT, PREVIOUS = 1, 0


def node2vec_setup(p, q, count=2000):
    """Walkers standing at vertex 1 of the diamond, arrived from 0."""
    graph = diamond_graph()
    program = Node2Vec(p=p, q=q, biased=False)
    tables = VertexAliasTables(graph)
    walkers = WalkerSet(np.full(count, PREVIOUS, dtype=np.int64))
    ids = np.arange(count)
    walkers.move(ids, np.full(count, CURRENT, dtype=np.int64))
    upper = program.upper_bound_array(graph)
    lower = program.lower_bound_array(graph)
    return graph, program, tables, walkers, ids, upper, lower


def multi_trial_targets(p, q, num_trials, seed, min_samples=30_000):
    graph, program, tables, walkers, ids, upper, lower = node2vec_setup(p, q)
    rng = np.random.default_rng(seed)
    counters = SamplingCounters()
    scratch = KernelScratch()
    targets = []
    while len(targets) < min_samples:
        outcome = batch_multi_trial_round(
            graph, tables, program, walkers, ids, upper, lower, rng,
            counters, num_trials=num_trials, validate_bounds=True,
            scratch=scratch,
        )
        targets.extend(graph.targets[outcome.edges[outcome.accepted]].tolist())
    return targets, counters


class TestDistributionalEquivalence:
    @pytest.mark.parametrize(
        "p,q,folding",
        [
            (2.0, 0.5, False),  # the paper-default workload; no folding
            (0.2, 2.0, True),  # return_pd = 5 towers over envelope 1
        ],
    )
    @pytest.mark.parametrize("num_trials", [2, 5])
    def test_matches_exact_law(self, p, q, folding, num_trials):
        targets, _ = multi_trial_targets(p, q, num_trials, seed=17)
        graph = diamond_graph()
        program = Node2Vec(p=p, q=q, biased=False)
        assert program.folding is folding
        law = exact_node2vec_law(graph, CURRENT, PREVIOUS, p, q, biased=False)
        assert_matches_distribution(targets, law)

    @pytest.mark.parametrize("p,q", [(2.0, 0.5), (0.2, 2.0)])
    def test_matches_scalar_sampler(self, p, q):
        """Scalar reference and fused kernel agree on the sampled law."""
        graph, program, tables, walkers, *_ = node2vec_setup(p, q, count=1)
        sampler = RejectionSampler(tables)
        rng = np.random.default_rng(23)
        counters = SamplingCounters()
        view = walkers.view(0)
        outliers = program.outlier_specs(graph, view)

        def pd_of(edge_index):
            return program.edge_dynamic_comp(graph, view, edge_index, None)

        scalar_targets = []
        while len(scalar_targets) < 30_000:
            edge = sampler.try_once(
                CURRENT, rng, pd_of, program.envelope, program.floor,
                outliers, counters,
            )
            if edge is not None:
                scalar_targets.append(int(graph.targets[edge]))

        law = exact_node2vec_law(graph, CURRENT, PREVIOUS, p, q, biased=False)
        assert_matches_distribution(scalar_targets, law)
        fused_targets, _ = multi_trial_targets(p, q, num_trials=4, seed=29)
        assert_matches_distribution(fused_targets, law)


class TestCountersConsistency:
    @pytest.mark.parametrize("p,q", [(2.0, 0.5), (0.2, 2.0)])
    def test_per_accept_work_matches_single_trial(self, p, q):
        """trials / Pd evaluations / pre-accepts per accepted move agree
        between the single-trial and fused kernels in expectation."""
        graph, program, tables, walkers, ids, upper, lower = node2vec_setup(
            p, q, count=4000
        )

        def run(kernel):
            rng = np.random.default_rng(31)
            counters = SamplingCounters()
            while counters.accepts < 50_000:
                kernel(rng, counters)
            return counters

        single = run(
            lambda rng, counters: batch_trial_round(
                graph, tables, program, walkers, ids, upper, lower, rng,
                counters,
            )
        )
        fused = run(
            lambda rng, counters: batch_multi_trial_round(
                graph, tables, program, walkers, ids, upper, lower, rng,
                counters, num_trials=5,
            )
        )
        for field in ("trials", "pd_evaluations", "pre_accepts",
                      "appendix_trials"):
            single_rate = getattr(single, field) / single.accepts
            fused_rate = getattr(fused, field) / fused.accepts
            assert single_rate == pytest.approx(fused_rate, rel=0.05, abs=0.01), (
                f"{field}: single-trial {single_rate:.4f} vs fused "
                f"{fused_rate:.4f} per accept"
            )

    def test_outcome_bookkeeping_invariants(self):
        graph, program, tables, walkers, ids, upper, lower = node2vec_setup(
            0.2, 2.0, count=500
        )
        rng = np.random.default_rng(37)
        counters = SamplingCounters()
        outcome = batch_multi_trial_round(
            graph, tables, program, walkers, ids, upper, lower, rng,
            counters, num_trials=6,
        )
        assert isinstance(outcome, MultiTrialOutcome)
        assert np.all((outcome.trials_used >= 1) & (outcome.trials_used <= 6))
        # Rejected walkers consumed the full speculation budget.
        assert np.all(outcome.trials_used[~outcome.accepted] == 6)
        assert np.all(outcome.edges[~outcome.accepted] == -1)
        assert np.all(outcome.edges[outcome.accepted] >= 0)
        assert np.all(outcome.pd_evaluations <= outcome.trials_used)
        assert counters.trials == int(outcome.trials_used.sum())
        assert counters.pd_evaluations == int(outcome.pd_evaluations.sum())
        assert counters.accepts == int(outcome.accepted.sum())

    def test_rejects_non_positive_trial_count(self):
        graph, program, tables, walkers, ids, upper, lower = node2vec_setup(
            2.0, 0.5, count=4
        )
        with pytest.raises(ValueError):
            batch_multi_trial_round(
                graph, tables, program, walkers, ids, upper, lower,
                np.random.default_rng(0), SamplingCounters(), num_trials=0,
            )


class TestAdaptiveTrialCount:
    def test_no_data_uses_floor(self):
        assert adaptive_trial_count(SamplingCounters()) == TRIAL_FUSION_MIN

    def test_high_acceptance_stays_at_floor(self):
        counters = SamplingCounters(trials=1000, accepts=950)
        assert adaptive_trial_count(counters) == TRIAL_FUSION_MIN

    def test_low_acceptance_speculates_more(self):
        mid = adaptive_trial_count(SamplingCounters(trials=1000, accepts=300))
        low = adaptive_trial_count(SamplingCounters(trials=1000, accepts=50))
        assert TRIAL_FUSION_MIN < mid < low <= TRIAL_FUSION_MAX

    def test_zero_acceptance_clamps_to_ceiling(self):
        counters = SamplingCounters(trials=1000, accepts=0)
        assert adaptive_trial_count(counters) == TRIAL_FUSION_MAX


class StuckAtZero(WalkerProgram):
    """Pd = 0 for walkers standing at vertex 0, 1 elsewhere."""

    dynamic = True
    supports_batch = True

    def edge_dynamic_comp(self, graph, walker, edge_index, query_result=None):
        return 0.0 if walker.current == 0 else 1.0

    def batch_dynamic_comp(self, graph, walkers, walker_ids, candidate_edges):
        return np.where(
            walkers.current[walker_ids] == 0, 0.0, 1.0
        ).astype(np.float64)


class TestGuardIntegration:
    @pytest.mark.parametrize("fuse", [False, True])
    def test_unsorted_walker_ids_guard_correct_lane(self, fuse):
        """The guard must flag the guarded walker's *lane*, not the
        position a sorted-array search would guess (satellite fix)."""
        graph = from_edges(2, [(0, 1), (1, 0)])
        engine = WalkEngine(
            graph, StuckAtZero(), WalkConfig(num_walkers=2, seed=3),
            fuse_trials=fuse,
        )
        # Walker 0 stands at vertex 0 (all Pd zero), walker 1 at 1.
        engine.walkers.current[:] = [0, 1]
        engine._rejection_streak[:] = ZERO_MASS_GUARD_TRIALS - 1
        # Deliberately unsorted: lane 0 holds walker 1.
        moved = engine._attempt_once(np.array([1, 0], dtype=np.int64))
        assert moved.all()
        # Walker 1 moved normally; walker 0 was killed by the guard.
        assert bool(engine.walkers.alive[1])
        assert not bool(engine.walkers.alive[0])
        assert engine.stats.termination.by_dead_end == 1

    def test_streak_advances_by_trials_consumed(self):
        """Fused rounds reach the guard after the same *trial* budget as
        single-trial rounds, in ~K-fold fewer rounds."""
        graph = from_edges(2, [(0, 1), (1, 0)])
        engine = WalkEngine(
            graph, StuckAtZero(),
            WalkConfig(num_walkers=1, max_steps=10, seed=5),
            fuse_trials=True,
        )
        engine.walkers.current[:] = [0]
        result = engine.run()
        # The step-mode loop retries within one iteration until the
        # guard resolves the stuck walker as a dead end.
        assert result.stats.termination.by_dead_end == 1
        assert result.stats.iterations == 1
        assert result.stats.counters.trials >= ZERO_MASS_GUARD_TRIALS
        assert engine._rejection_streak[0] == 0
