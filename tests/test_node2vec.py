"""Unit tests for the node2vec walk program."""

import numpy as np
import pytest

from repro.algorithms import Node2Vec
from repro.core.program import StateQuery
from repro.core.walker import NO_VERTEX, WalkerSet
from repro.errors import ProgramError
from repro.graph.builder import from_edges

from tests.helpers import diamond_graph


def walkers_at(current, previous=None, count=1):
    walkers = WalkerSet(np.full(count, current, dtype=np.int64))
    if previous is not None:
        # Simulate one past move without touching step semantics used
        # by Pd (node2vec only reads prev).
        walkers.previous[:] = previous
        walkers.steps[:] = 1
    return walkers


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ProgramError):
            Node2Vec(p=0.0)
        with pytest.raises(ProgramError):
            Node2Vec(q=-1.0)

    def test_envelope_with_and_without_folding(self):
        folded = Node2Vec(p=0.25, q=1.0)  # 1/p = 4 dominates
        assert folded.folding
        assert folded.envelope == 1.0
        naive = Node2Vec(p=0.25, q=1.0, fold_outlier=False)
        assert not naive.folding
        assert naive.envelope == 4.0

    def test_folding_auto_disabled_when_useless(self):
        program = Node2Vec(p=2.0, q=0.5)  # 1/q = 2 dominates, 1/p = 0.5
        assert not program.folding
        assert program.envelope == 2.0

    def test_floor(self):
        assert Node2Vec(p=2.0, q=0.5).floor == 0.5
        assert Node2Vec(p=0.5, q=2.0).floor == 0.5
        assert Node2Vec(p=1.0, q=1.0).floor == 1.0


class TestDynamicComponent:
    def test_three_cases(self):
        graph = diamond_graph()
        program = Node2Vec(p=4.0, q=0.25, biased=False)
        walkers = walkers_at(current=1, previous=0)
        view = walkers.view(0)
        # Return edge 1 -> 0: d_tx = 0.
        assert program.edge_dynamic_comp(
            graph, view, graph.edge_index(1, 0)
        ) == pytest.approx(0.25)
        # 1 -> 2 with 2 adjacent to 0: d_tx = 1.
        assert program.edge_dynamic_comp(
            graph, view, graph.edge_index(1, 2)
        ) == pytest.approx(1.0)
        # 1 -> 3 with 3 not adjacent to 0: d_tx = 2.
        assert program.edge_dynamic_comp(
            graph, view, graph.edge_index(1, 3)
        ) == pytest.approx(4.0)

    def test_first_step_uniform(self):
        graph = diamond_graph()
        program = Node2Vec(p=4.0, q=0.25, biased=False)
        view = walkers_at(current=1).view(0)
        for edge in range(*graph.edge_range(1)):
            assert program.edge_dynamic_comp(graph, view, edge) == 1.0

    def test_query_result_short_circuits_adjacency(self):
        graph = diamond_graph()
        program = Node2Vec(p=1.0, q=4.0, biased=False)
        view = walkers_at(current=1, previous=0).view(0)
        edge = graph.edge_index(1, 3)
        assert program.edge_dynamic_comp(graph, view, edge, True) == 1.0
        assert program.edge_dynamic_comp(
            graph, view, edge, False
        ) == pytest.approx(0.25)

    def test_batch_matches_scalar(self):
        graph = diamond_graph()
        program = Node2Vec(p=0.5, q=2.0, biased=False)
        walkers = walkers_at(current=1, previous=0, count=3)
        start, end = graph.edge_range(1)
        edges = np.arange(start, end)
        batch = program.batch_dynamic_comp(
            graph, walkers, np.arange(3), edges
        )
        scalar = [
            program.edge_dynamic_comp(graph, walkers.view(i), int(e))
            for i, e in enumerate(edges)
        ]
        np.testing.assert_allclose(batch, scalar)

    def test_batch_first_step(self):
        graph = diamond_graph()
        program = Node2Vec(p=0.5, q=2.0, biased=False)
        walkers = walkers_at(current=0, count=2)
        values = program.batch_dynamic_comp(
            graph, walkers, np.arange(2), np.array([0, 1])
        )
        np.testing.assert_array_equal(values, [1.0, 1.0])


class TestStateQueries:
    def test_query_posted_for_non_return_candidates(self):
        graph = diamond_graph()
        program = Node2Vec(p=1.0, q=2.0)
        view = walkers_at(current=1, previous=0).view(0)
        query = program.state_query(graph, view, graph.edge_index(1, 3))
        assert query == StateQuery(target_vertex=0, payload=3)

    def test_no_query_for_return_edge_or_first_step(self):
        graph = diamond_graph()
        program = Node2Vec()
        view = walkers_at(current=1, previous=0).view(0)
        assert program.state_query(graph, view, graph.edge_index(1, 0)) is None
        fresh = walkers_at(current=1).view(0)
        assert program.state_query(graph, fresh, 0) is None

    def test_batch_state_queries(self):
        graph = diamond_graph()
        program = Node2Vec()
        walkers = walkers_at(current=1, previous=0, count=2)
        edges = np.array([graph.edge_index(1, 0), graph.edge_index(1, 3)])
        targets, payloads = program.batch_state_queries(
            graph, walkers, np.arange(2), edges
        )
        assert targets.tolist() == [-1, 0]
        assert payloads[1] == 3

    def test_batch_dynamic_with_answers(self):
        graph = diamond_graph()
        program = Node2Vec(p=0.5, q=4.0, biased=False)
        walkers = walkers_at(current=1, previous=0, count=3)
        edges = np.array(
            [
                graph.edge_index(1, 0),  # return
                graph.edge_index(1, 2),  # neighbour (answer True)
                graph.edge_index(1, 3),  # non-neighbour (answer False)
            ]
        )
        answers = np.array([0.0, 1.0, 0.0])
        answered = np.array([False, True, True])
        values = program.batch_dynamic_with_answers(
            graph, walkers, np.arange(3), edges, answers, answered
        )
        np.testing.assert_allclose(values, [2.0, 1.0, 0.25])


class TestOutliers:
    def test_scalar_spec_points_at_return_edge(self):
        graph = diamond_graph()
        program = Node2Vec(p=0.25, q=1.0, biased=False)
        view = walkers_at(current=1, previous=0).view(0)
        (spec,) = program.outlier_specs(graph, view)
        assert graph.targets[spec.edge] == 0
        assert spec.pd_bound == pytest.approx(4.0)
        assert spec.static_mass == pytest.approx(1.0)

    def test_no_spec_without_previous(self):
        graph = diamond_graph()
        program = Node2Vec(p=0.25, q=1.0)
        assert program.outlier_specs(graph, walkers_at(0).view(0)) == ()

    def test_no_spec_without_return_edge(self):
        # Directed: 0 -> 1 -> 2 with no way back.
        graph = from_edges(3, [(0, 1), (1, 2)])
        program = Node2Vec(p=0.25, q=1.0)
        view = walkers_at(current=1, previous=0).view(0)
        assert program.outlier_specs(graph, view) == ()

    def test_parallel_return_edges_mass_summed(self):
        graph = from_edges(3, [(1, 0), (1, 0), (1, 2)])
        program = Node2Vec(p=0.25, q=1.0, biased=False)
        view = walkers_at(current=1, previous=0).view(0)
        (spec,) = program.outlier_specs(graph, view)
        assert spec.static_mass == pytest.approx(2.0)

    def test_batch_outliers(self):
        graph = diamond_graph(weights=True)
        program = Node2Vec(p=0.25, q=1.0, biased=True)
        walkers = WalkerSet(np.array([1, 1, 2]))
        walkers.previous[:] = [0, NO_VERTEX, 3]
        edges, bounds, widths, masses = program.batch_outliers(
            graph, walkers, np.arange(3)
        )
        assert edges[1] == -1  # no previous vertex
        assert graph.targets[edges[0]] == 0
        assert graph.targets[edges[2]] == 3
        assert masses[0] == pytest.approx(
            graph.weights[graph.edge_index(1, 0)]
        )
        assert np.all(bounds == 4.0)

    def test_batch_outliers_none_when_not_folding(self):
        graph = diamond_graph()
        program = Node2Vec(p=2.0, q=0.5)
        walkers = walkers_at(current=1, previous=0)
        assert program.batch_outliers(graph, walkers, np.array([0])) is None


class TestStaticComponent:
    def test_biased_uses_weights(self):
        graph = diamond_graph(weights=True)
        assert Node2Vec(biased=True).edge_static_comp(graph) is None

    def test_unbiased_forces_ones(self):
        graph = diamond_graph(weights=True)
        static = Node2Vec(biased=False).edge_static_comp(graph)
        np.testing.assert_array_equal(static, np.ones(graph.num_edges))
