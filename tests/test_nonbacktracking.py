"""Tests for the non-backtracking walk program."""

import numpy as np
import pytest

from repro.algorithms import NonBacktrackingWalk
from repro.cluster import DistributedWalkEngine, MessageKind
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import from_edges
from repro.graph.generators import ring_graph, uniform_degree_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(120, 5, seed=0, undirected=True)


class TestBehaviour:
    def test_never_backtracks(self, graph):
        config = WalkConfig(num_walkers=300, max_steps=20, record_paths=True, seed=1)
        result = WalkEngine(graph, NonBacktrackingWalk(), config).run()
        for path in result.paths:
            for position in range(2, len(path)):
                assert path[position] != path[position - 2]

    def test_scalar_path_agrees(self, graph):
        config = WalkConfig(num_walkers=50, max_steps=10, record_paths=True, seed=2)
        result = WalkEngine(
            graph, NonBacktrackingWalk(), config, force_scalar=True
        ).run()
        for path in result.paths:
            for position in range(2, len(path)):
                assert path[position] != path[position - 2]

    def test_degree_one_dead_end(self):
        # 0 - 1 only: after moving 0 -> 1, the walker has nowhere to go.
        graph = from_edges(2, [(0, 1)], undirected=True)
        config = WalkConfig(
            num_walkers=1,
            max_steps=10,
            record_paths=True,
            start_vertices=np.array([0]),
        )
        result = WalkEngine(graph, NonBacktrackingWalk(), config).run()
        assert result.paths[0].tolist() == [0, 1]
        assert result.stats.termination.by_dead_end == 1

    def test_unbiased_flag(self, graph):
        program = NonBacktrackingWalk(biased=False)
        static = program.edge_static_comp(graph)
        np.testing.assert_array_equal(static, np.ones(graph.num_edges))
        assert NonBacktrackingWalk(biased=True).edge_static_comp(graph) is None

    def test_ring_walk_is_deterministic_direction(self):
        """On an undirected cycle, a non-backtracking walker can only
        keep going the way it started."""
        graph = ring_graph(8, undirected=True)
        config = WalkConfig(
            num_walkers=100,
            max_steps=8,
            record_paths=True,
            seed=3,
            start_vertices=np.zeros(100, dtype=np.int64),
        )
        result = WalkEngine(graph, NonBacktrackingWalk(), config).run()
        for path in result.paths:
            first_step = (int(path[1]) - int(path[0])) % 8
            for source, target in zip(path[1:-1], path[2:]):
                assert (int(target) - int(source)) % 8 == first_step


class TestDistributed:
    def test_no_state_queries_needed(self, graph):
        """Second-order order but locally-resolvable Pd: the engine
        must not send any walker-to-vertex queries."""
        config = WalkConfig(num_walkers=60, max_steps=10, seed=4)
        result = DistributedWalkEngine(
            graph, NonBacktrackingWalk(), config, num_nodes=4
        ).run()
        assert (
            result.cluster.network.total_messages(MessageKind.STATE_QUERY) == 0
        )
        assert result.stats.total_steps == 600
