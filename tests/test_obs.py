"""Tests for the unified telemetry layer (repro.obs).

Covers the registry/tracer primitives, the adapters over existing stat
objects, the three exporter formats, and the integration contracts the
issue pins: traced local runs nest Gather/Move/Update under supersteps,
distributed walker hops stitch across node tracks via shared trace
ids, a degraded cluster run's exported trace is bit-identical across
replay, and a disabled tracer changes nothing.
"""

import json
import re

import numpy as np
import pytest

from repro.algorithms import DeepWalk, Node2Vec
from repro.cluster import DistributedWalkEngine, FaultPlan, MessageFaults
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.stats import ServiceMetrics
from repro.errors import ObsError
from repro.graph.generators import uniform_degree_graph
from repro.obs import (
    SUPERSTEP_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    Tracer,
    registry_from_cluster_stats,
    registry_from_service_metrics,
    registry_from_walk_stats,
    to_chrome_trace,
    to_json_lines,
    to_prometheus_text,
    write_chrome_trace,
)


class ManualClock:
    """Injectable clock the tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture(scope="module")
def graph():
    return uniform_degree_graph(300, 6, seed=2, undirected=True)


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("walk_steps", "steps taken")
        counter.inc(5)
        assert registry.counter("walk_steps") is counter
        assert registry.value("walk_steps") == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ObsError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("shed", reason="queue_full").inc(2)
        registry.counter("shed", reason="deadline").inc(1)
        assert registry.value("shed", reason="queue_full") == 2
        assert registry.value("shed", reason="deadline") == 1
        assert registry.value("shed") == 0  # unlabelled is its own series

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(ObsError):
            registry.gauge("depth")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError):
            registry.counter("bad name")
        with pytest.raises(ObsError):
            registry.counter("ok", **{"0bad": "v"})

    def test_histogram_observe_and_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", boundaries=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(2.55)

    def test_histogram_boundary_conflicts(self):
        registry = MetricsRegistry()
        registry.histogram("lat", boundaries=(0.1, 1.0))
        with pytest.raises(ObsError):
            registry.histogram("lat", boundaries=(0.5, 1.0))
        with pytest.raises(ObsError):
            Histogram(name="bad", boundaries=(1.0, 0.5))

    def test_merge_adds_maxes_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("steps").inc(3)
        b.counter("steps").inc(4)
        a.gauge("peak").set(7)
        b.gauge("peak").set(5)
        a.histogram("lat", boundaries=(1.0,)).observe(0.5)
        b.histogram("lat", boundaries=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.value("steps") == 7
        assert a.value("peak") == 7
        assert a.get("lat").counts == [1, 1]

    def test_merge_never_mutates_source(self):
        source = MetricsRegistry()
        source.counter("steps").inc(2)
        sink = MetricsRegistry()
        sink.merge(source)
        sink.merge(source)  # merge is additive by design...
        assert sink.value("steps") == 4
        assert source.value("steps") == 2  # ...but the source is untouched

    def test_merge_boundary_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", boundaries=(1.0,))
        b.histogram("lat", boundaries=(2.0,))
        with pytest.raises(ObsError):
            a.merge(b)


# ---------------------------------------------------------------------------
# Tracer primitives
# ---------------------------------------------------------------------------


class TestTracer:
    def test_measured_spans_nest_per_track(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.now = 1.0
            with tracer.span("inner"):
                clock.now = 1.5
            clock.now = 2.0
        (inner,) = tracer.find("inner")
        (outer_span,) = tracer.find("outer")
        assert inner.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        assert outer_span.ts == 0.0 and outer_span.dur == pytest.approx(2.0)
        assert inner.ts == pytest.approx(1.0)
        assert outer.span_id == outer_span.span_id

    def test_tracks_nest_independently(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a", track="t1"):
            with tracer.span("b", track="t2"):
                pass
        (b,) = tracer.find("b")
        assert b.parent_id is None  # different track, no nesting

    def test_record_span_reads_no_clock(self):
        def exploding_clock():  # pragma: no cover - must never run
            raise AssertionError("declared path read the clock")

        tracer = Tracer(clock=exploding_clock)
        span_id = tracer.record_span("superstep", ts=1.0, dur=0.25)
        assert span_id > 0
        child = tracer.record_span(
            "stage.gather", ts=1.0, dur=0.1, parent_id=span_id
        )
        assert tracer.children_of(span_id)[0].span_id == child

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.record_span("x", ts=0.0, dur=1.0) == 0
        with tracer.span("y") as handle:
            assert handle is None
        assert len(tracer) == 0
        assert not tracer.sampled(0)

    def test_sampling_is_deterministic(self):
        tracer = Tracer(sample_every=4)
        kept = [k for k in range(16) if tracer.sampled(k)]
        assert kept == [0, 4, 8, 12]

    def test_invalid_sample_every(self):
        with pytest.raises(ObsError):
            Tracer(sample_every=0)

    def test_max_spans_drops_not_grows(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.record_span(f"s{i}", ts=float(i), dur=1.0)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_handle_args_attach_results(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run") as handle:
            handle.args["status"] = "complete"
        assert tracer.find("run")[0].args["status"] == "complete"


# ---------------------------------------------------------------------------
# Adapters over the existing stat objects
# ---------------------------------------------------------------------------


class TestAdapters:
    def test_walk_stats_adapter(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=10, seed=4)
        result = WalkEngine(graph, DeepWalk(), config).run()
        registry = registry_from_walk_stats(result.stats)
        assert registry.value("walk_steps") == result.stats.total_steps
        assert (
            registry.value("walk_terminations", reason="step_limit")
            == result.stats.termination.by_step_limit
        )
        active = registry.get("walk_active_walkers")
        assert active.count == result.stats.iterations

    def test_walk_stats_adapter_labels_propagate(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=5, seed=4)
        result = WalkEngine(graph, DeepWalk(), config).run()
        registry = registry_from_walk_stats(result.stats, shard="3")
        assert registry.value("walk_steps", shard="3") > 0

    def test_service_metrics_adapter(self):
        metrics = ServiceMetrics()
        metrics.submitted = 5
        metrics.served = 3
        metrics.record_shed("queue_full")
        metrics.record_shed("queue_full")
        metrics.record_latency(0.02)
        registry = registry_from_service_metrics(metrics)
        assert registry.value("service_submitted") == 5
        assert registry.value("service_shed", reason="queue_full") == 2
        assert registry.get("service_request_latency_seconds").count == 1

    def test_cluster_stats_adapter(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=8, seed=4)
        engine = DistributedWalkEngine(
            graph, DeepWalk(), config, num_nodes=4
        )
        result = engine.run()
        registry = registry_from_cluster_stats(result.cluster)
        assert registry.value("cluster_nodes") == 4
        assert (
            registry.value("cluster_supersteps")
            == result.cluster.num_supersteps
        )
        assert registry.value(
            "cluster_node_trials", node="0"
        ) == float(result.cluster.trials_per_node[0])
        hist = registry.get("cluster_superstep_seconds")
        assert hist.boundaries == SUPERSTEP_SECONDS_BUCKETS
        assert hist.count == result.cluster.num_supersteps


# ---------------------------------------------------------------------------
# Exporter formats
# ---------------------------------------------------------------------------

_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"'
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:+]*"           # metric name
    r"(\{" + _LABEL_PAIR + r"(," + _LABEL_PAIR + r")*\})?"
    r" -?[0-9].*$"                          # value
)


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("walk_steps", "total steps").inc(42)
    registry.gauge("queue_peak", "max queue depth").set(7)
    hist = registry.histogram(
        "latency_seconds", "request latency", boundaries=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 0.5, 5.0):
        hist.observe(value)
    registry.counter("shed", "sheds", reason='with"quote').inc(1)
    return registry


class TestPrometheusExport:
    def test_every_line_parses(self):
        text = to_prometheus_text(_sample_registry())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _PROM_SAMPLE.match(line), f"unparseable line: {line!r}"

    def test_counter_total_suffix_and_type_headers(self):
        text = to_prometheus_text(_sample_registry())
        assert "# TYPE walk_steps_total counter" in text
        assert "walk_steps_total 42" in text
        assert "# TYPE queue_peak gauge" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus_text(_sample_registry())
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("latency_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1].startswith('latency_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "latency_seconds_count 4" in text
        assert "latency_seconds_sum 6.05" in text

    def test_label_values_escaped(self):
        text = to_prometheus_text(_sample_registry())
        assert 'reason="with\\"quote"' in text

    def test_deterministic_output(self):
        assert to_prometheus_text(_sample_registry()) == to_prometheus_text(
            _sample_registry()
        )


class TestJsonLinesExport:
    def test_round_trip(self):
        tracer = Tracer(clock=ManualClock())
        tracer.record_span("a", ts=0.0, dur=1.0)
        text = to_json_lines(_sample_registry(), tracer)
        records = [json.loads(line) for line in text.strip().splitlines()]
        kinds = {r["record"] for r in records}
        assert kinds == {"metric", "span"}
        hist = next(
            r for r in records if r.get("name") == "latency_seconds"
        )
        assert hist["counts"] == [1, 2, 1]
        assert hist["count"] == 4


class TestChromeTraceExport:
    def _traced_tracer(self):
        tracer = Tracer(clock=None)
        tracer.record_span("s1", ts=0.0, dur=0.5, track="node1")
        tracer.record_span("s0", ts=0.25, dur=0.5, track="node0")
        tracer.record_span("w", ts=0.1, dur=0.1, track="node10",
                           trace_id="walker-3")
        tracer.record_span("c", ts=0.0, dur=1.0, track="cluster")
        return tracer

    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._traced_tracer(), path)
        doc = json.loads(path.read_text())
        assert doc == to_chrome_trace(self._traced_tracer())

    def test_node_tracks_numeric_then_named(self):
        doc = to_chrome_trace(self._traced_tracer())
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert names == ["node0", "node1", "node10", "cluster"]

    def test_ts_monotone_per_tid(self):
        doc = to_chrome_trace(self._traced_tracer())
        per_tid: dict = {}
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            per_tid.setdefault(event["tid"], []).append(event["ts"])
        assert per_tid, "no complete events exported"
        for tid, stamps in per_tid.items():
            assert stamps == sorted(stamps)

    def test_span_identity_rides_in_args(self):
        doc = to_chrome_trace(self._traced_tracer())
        walker = next(
            e for e in doc["traceEvents"] if e.get("name") == "w"
        )
        assert walker["args"]["trace_id"] == "walker-3"
        assert walker["args"]["span_id"] > 0
        assert walker["ts"] == pytest.approx(0.1 * 1e6)


# ---------------------------------------------------------------------------
# Engine integration: local
# ---------------------------------------------------------------------------


class TestLocalEngineTracing:
    def _run(self, graph, tracer, mode="step"):
        config = WalkConfig(
            num_walkers=50, max_steps=10, seed=6, engine_mode=mode,
            record_paths=True,
        )
        engine = WalkEngine(graph, DeepWalk(), config)
        engine.observe(tracer)
        return engine.run()

    def test_stage_spans_nest_under_supersteps(self, graph):
        tracer = Tracer()
        result = self._run(graph, tracer)
        (run_span,) = tracer.find("engine.run")
        supersteps = tracer.find("superstep")
        assert len(supersteps) == result.stats.iterations
        assert all(s.parent_id == run_span.span_id for s in supersteps)
        superstep_ids = {s.span_id for s in supersteps}
        for stage in ("stage.update", "stage.gather", "stage.move"):
            stage_spans = tracer.find(stage)
            assert stage_spans, f"missing {stage} spans"
            assert all(
                s.parent_id in superstep_ids for s in stage_spans
            )
        assert run_span.args["status"] == "complete"

    def test_walker_mode_also_traced(self, graph):
        tracer = Tracer()
        self._run(graph, tracer, mode="walker")
        assert tracer.find("stage.move")
        assert tracer.find("stage.update")

    def test_disabled_tracer_zero_spans_bit_identical(self, graph):
        plain = self._run(graph, None)
        disabled = Tracer(enabled=False)
        off = self._run(graph, disabled)
        assert len(disabled) == 0
        for a, b in zip(plain.paths, off.paths):
            assert np.array_equal(a, b)

    def test_traced_run_bit_identical_to_untraced(self, graph):
        plain = self._run(graph, None)
        traced = self._run(graph, Tracer())
        for a, b in zip(plain.paths, traced.paths):
            assert np.array_equal(a, b)
        assert (
            plain.stats.counters.trials == traced.stats.counters.trials
        )


# ---------------------------------------------------------------------------
# Engine integration: distributed (declared spans, simulated seconds)
# ---------------------------------------------------------------------------


def _distributed_run(graph, tracer, *, fault_plan=None, checkpoint_every=0,
                     seed=8):
    config = WalkConfig(
        num_walkers=60, max_steps=12, seed=seed, record_paths=True
    )
    engine = DistributedWalkEngine(
        graph,
        Node2Vec(p=2.0, q=0.5),
        config,
        num_nodes=4,
        fault_plan=fault_plan,
        checkpoint_every=checkpoint_every,
    )
    engine.observe(tracer)
    return engine.run()


class TestDistributedTracing:
    def test_superstep_spans_nest_stages_per_node(self, graph):
        tracer = Tracer()
        result = _distributed_run(graph, tracer)
        supersteps = tracer.find("superstep")
        assert len(supersteps) == result.cluster.num_supersteps
        assert all(s.track == "cluster" for s in supersteps)
        superstep_ids = {s.span_id for s in supersteps}
        computes = tracer.find("node.compute")
        assert {s.track for s in computes} == {
            f"node{i}" for i in range(4)
        }
        assert all(s.parent_id in superstep_ids for s in computes)
        compute_ids = {s.span_id for s in computes}
        for stage in ("stage.gather", "stage.move", "stage.update"):
            stage_spans = tracer.find(stage)
            assert len(stage_spans) == len(computes)
            assert all(s.parent_id in compute_ids for s in stage_spans)

    def test_stage_spans_tile_their_node_compute(self, graph):
        tracer = Tracer()
        _distributed_run(graph, tracer)
        computes = {s.span_id: s for s in tracer.find("node.compute")}
        by_parent: dict = {}
        for name in ("stage.gather", "stage.move", "stage.update"):
            for span in tracer.find(name):
                by_parent.setdefault(span.parent_id, []).append(span)
        for parent_id, stages in by_parent.items():
            parent = computes[parent_id]
            stages.sort(key=lambda s: s.ts)
            assert stages[0].ts == pytest.approx(parent.ts)
            cursor = parent.ts
            for stage in stages:
                assert stage.ts == pytest.approx(cursor)
                cursor += stage.dur
            assert cursor == pytest.approx(parent.ts + parent.dur)

    def test_cross_node_walker_hops_share_trace_id(self, graph):
        tracer = Tracer()
        _distributed_run(graph, tracer)
        hops = tracer.find("walker.hop")
        assert hops, "expected cross-node walker hops"
        by_walker: dict = {}
        for hop in hops:
            by_walker.setdefault(hop.args["walker"], []).append(hop)
        multi = {
            w: spans for w, spans in by_walker.items() if len(spans) > 1
        }
        assert multi, "expected walkers with multiple hops"
        chained = 0
        for walker, spans in multi.items():
            trace_ids = {s.trace_id for s in spans}
            assert trace_ids == {f"walker-{walker}"}
            tracks = {s.track for s in spans}
            assert len(tracks) >= 1
            ids = {s.span_id for s in spans}
            chained += sum(1 for s in spans if s.parent_id in ids)
        assert chained > 0, "hops never chained to their predecessor"
        # Hops land on the destination node's track across > 1 node.
        all_tracks = {s.track for s in hops}
        assert len(all_tracks) > 1

    def test_sample_every_thins_walker_spans_only(self, graph):
        full = Tracer()
        _distributed_run(graph, full)
        thinned = Tracer(sample_every=7)
        _distributed_run(graph, thinned)
        full_walkers = {s.args["walker"] for s in full.find("walker.hop")}
        thin_walkers = {
            s.args["walker"] for s in thinned.find("walker.hop")
        }
        assert thin_walkers == {w for w in full_walkers if w % 7 == 0}
        # Structural spans are never thinned.
        assert len(thinned.find("superstep")) == len(
            full.find("superstep")
        )

    def test_traced_distributed_run_bit_identical(self, graph):
        plain = _distributed_run(graph, None)
        traced = _distributed_run(graph, Tracer())
        assert (
            plain.cluster.simulated_seconds
            == traced.cluster.simulated_seconds
        )
        for a, b in zip(plain.paths, traced.paths):
            assert np.array_equal(a, b)

    def test_degraded_run_trace_bit_identical_across_replay(
        self, graph, tmp_path
    ):
        plan = FaultPlan(
            seed=5,
            default_faults=MessageFaults(drop=0.08, duplicate=0.04),
        )
        exports = []
        for attempt in range(2):
            tracer = Tracer()
            _distributed_run(
                graph, tracer, fault_plan=plan, checkpoint_every=4
            )
            path = tmp_path / f"trace{attempt}.json"
            write_chrome_trace(tracer, path)
            exports.append(path.read_text())
        assert exports[0] == exports[1]
        assert '"message.flush"' in exports[0]

    def test_message_flush_accounts_network_deltas(self, graph):
        tracer = Tracer()
        result = _distributed_run(graph, tracer)
        flushes = tracer.find("message.flush")
        assert len(flushes) == result.cluster.num_supersteps
        assert all(s.category == "network" for s in flushes)
        total = sum(s.args["messages"] for s in flushes)
        assert total == result.cluster.network.total_messages()

    def test_cluster_run_span_covers_simulated_timeline(self, graph):
        tracer = Tracer()
        result = _distributed_run(graph, tracer)
        (run_span,) = tracer.find("cluster.run")
        assert run_span.ts == 0.0
        assert run_span.dur == pytest.approx(
            result.cluster.simulated_seconds
        )
        last = max(
            s.ts + s.dur
            for s in tracer.spans
            if s.name in ("superstep", "node.compute")
        )
        assert last <= run_span.dur * (1 + 1e-9)


# ---------------------------------------------------------------------------
# Parallel shard metric deltas
# ---------------------------------------------------------------------------


class TestParallelMetricsMerge:
    def test_shard_deltas_merge_into_run_totals(self, graph):
        from repro.parallel import run_parallel_walk

        config = WalkConfig(num_walkers=40, max_steps=8, seed=9)
        result = run_parallel_walk(
            graph, DeepWalk(), config, num_workers=2
        )
        registry = result.metrics
        assert registry is not None
        total = sum(
            inst.value
            for inst in registry.instruments()
            if inst.name == "walk_steps"
        )
        assert total == result.stats.total_steps
        shards = {
            dict(inst.labels).get("shard")
            for inst in registry.instruments()
            if inst.name == "walk_steps"
        }
        assert shards == {"0", "1"}
