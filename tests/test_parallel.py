"""Tests for multi-process walk execution."""

import os
import time

import numpy as np
import pytest

from repro.algorithms import DeepWalk, Node2Vec, PPR, UniformWalk
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ConfigError, WorkerError
from repro.graph.generators import uniform_degree_graph
from repro.parallel import run_parallel_walk, shard_config

from tests.helpers import diamond_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(200, 5, seed=0, undirected=True)


class TestShardConfig:
    def test_walker_counts_partition(self, graph):
        config = WalkConfig(num_walkers=103, max_steps=5)
        shards = shard_config(config, graph, 4)
        assert sum(s.num_walkers for s in shards) == 103
        assert len(shards) == 4

    def test_default_starts_preserved_globally(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=5)
        shards = shard_config(config, graph, 3)
        starts = np.concatenate([s.resolve_starts(graph) for s in shards])
        np.testing.assert_array_equal(
            starts, np.arange(10) % graph.num_vertices
        )

    def test_explicit_starts_partition(self, graph):
        explicit = np.arange(20) * 3 % graph.num_vertices
        config = WalkConfig(num_walkers=20, start_vertices=explicit, max_steps=5)
        shards = shard_config(config, graph, 4)
        starts = np.concatenate([s.resolve_starts(graph) for s in shards])
        np.testing.assert_array_equal(starts, explicit)

    def test_distinct_seeds(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=5, seed=9)
        shards = shard_config(config, graph, 4)
        assert len({s.seed for s in shards}) == 4

    def test_more_shards_than_walkers(self, graph):
        config = WalkConfig(num_walkers=3, max_steps=5)
        shards = shard_config(config, graph, 8)
        assert len(shards) == 3

    def test_invalid_shards(self, graph):
        with pytest.raises(ConfigError):
            shard_config(WalkConfig(num_walkers=5), graph, 0)

    def test_start_vertices_shorter_than_walkers_rejected(self, graph):
        config = WalkConfig(
            num_walkers=10,
            max_steps=5,
            start_vertices=np.zeros(4, dtype=np.int64),
        )
        with pytest.raises(ConfigError, match="4 start vertices"):
            shard_config(config, graph, 2)
        with pytest.raises(ConfigError, match="4 start vertices"):
            run_parallel_walk(graph, UniformWalk(), config, num_workers=2)

    def test_seed_streams_independent_across_shards(self, graph):
        """Shards with identical starts must not replay each other."""
        config = WalkConfig(
            num_walkers=40,
            max_steps=12,
            record_paths=True,
            seed=7,
            start_vertices=np.zeros(40, dtype=np.int64),
        )
        shards = shard_config(config, graph, 2)
        results = [
            WalkEngine(graph, UniformWalk(), shard).run() for shard in shards
        ]
        identical = sum(
            np.array_equal(a, b)
            for a, b in zip(results[0].paths, results[1].paths)
        )
        # A handful of 12-step coincidences is plausible; wholesale
        # duplication means the shards shared a random stream.
        assert identical < len(results[0].paths) // 2

    def test_shard_seeds_differ_across_base_seeds(self, graph):
        config_a = WalkConfig(num_walkers=8, max_steps=5, seed=1)
        config_b = WalkConfig(num_walkers=8, max_steps=5, seed=2)
        seeds_a = {s.seed for s in shard_config(config_a, graph, 4)}
        seeds_b = {s.seed for s in shard_config(config_b, graph, 4)}
        assert not seeds_a & seeds_b


class TestParallelExecution:
    def test_single_worker_matches_walker_count(self, graph):
        config = WalkConfig(num_walkers=60, max_steps=10, record_paths=True)
        result = run_parallel_walk(graph, UniformWalk(), config, num_workers=1)
        assert result.walk_lengths.size == 60
        assert len(result.paths) == 60
        assert result.stats.total_steps == 600

    def test_multi_worker_counts(self, graph):
        config = WalkConfig(num_walkers=80, max_steps=8, record_paths=True)
        result = run_parallel_walk(graph, DeepWalk(), config, num_workers=4)
        assert result.num_workers == 4
        assert result.walk_lengths.size == 80
        assert result.stats.total_steps == 80 * 8
        assert all(len(path) == 9 for path in result.paths)

    def test_paths_valid(self, graph):
        config = WalkConfig(num_walkers=40, max_steps=6, record_paths=True)
        result = run_parallel_walk(
            graph, Node2Vec(p=2, q=0.5, biased=False), config, num_workers=2
        )
        for path in result.paths:
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_termination_accounting_merged(self, graph):
        config = WalkConfig(
            num_walkers=200,
            max_steps=None,
            termination_probability=0.2,
        )
        result = run_parallel_walk(graph, PPR(), config, num_workers=3)
        assert result.stats.termination.total == 200

    def test_distribution_matches_single_engine(self):
        """Sharded executions draw from the same law."""
        graph = diamond_graph()
        config = WalkConfig(
            num_walkers=8000,
            max_steps=1,
            record_paths=True,
            seed=3,
            start_vertices=np.full(8000, 1, dtype=np.int64),
        )
        parallel = run_parallel_walk(
            graph, UniformWalk(), config, num_workers=4
        )
        single = WalkEngine(graph, UniformWalk(), config).run()
        a = np.bincount([int(p[-1]) for p in parallel.paths], minlength=4)
        b = np.bincount([int(p[-1]) for p in single.paths], minlength=4)
        assert np.abs(a / 8000 - b / 8000).max() < 0.03

    def test_pd_evaluation_rate_unchanged(self, graph):
        """Sharding must not change per-step sampling cost."""
        program_args = dict(p=0.5, q=2.0, biased=False)
        config = WalkConfig(num_walkers=200, max_steps=10, seed=4)
        parallel = run_parallel_walk(
            graph, Node2Vec(**program_args), config, num_workers=4
        )
        single = WalkEngine(graph, Node2Vec(**program_args), config).run()
        assert parallel.stats.pd_evaluations_per_step == pytest.approx(
            single.stats.pd_evaluations_per_step, rel=0.15
        )


class RaisingWalk(UniformWalk):
    """Raises during walker setup inside the worker process."""

    def setup_walkers(self, graph, walkers, rng):
        raise ValueError("bad start table")


class DyingWalk(UniformWalk):
    """Kills its worker process outright (simulated OOM kill)."""

    def setup_walkers(self, graph, walkers, rng):
        os._exit(23)


class TestSupervision:
    """The supervised pool: death, exceptions, timeouts, deadlines."""

    def test_dead_worker_raises_promptly(self, graph):
        """Regression for the bare pool.map hang on worker death."""
        config = WalkConfig(num_walkers=8, max_steps=4)
        started = time.monotonic()
        with pytest.raises(WorkerError) as info:
            run_parallel_walk(
                graph, DyingWalk(), config, num_workers=2, max_restarts=0
            )
        assert time.monotonic() - started < 60.0
        assert info.value.kind == "died"
        assert info.value.shard in (0, 1)
        message = str(info.value)
        assert "shard" in message and "seed" in message

    def test_dead_worker_exhausts_restarts(self, graph):
        config = WalkConfig(num_walkers=8, max_steps=4)
        with pytest.raises(WorkerError, match="attempt"):
            run_parallel_walk(
                graph, DyingWalk(), config, num_workers=2, max_restarts=1
            )

    def test_worker_exception_preserves_context(self, graph):
        config = WalkConfig(num_walkers=8, max_steps=4, seed=42)
        shards = shard_config(config, graph, 2)
        with pytest.raises(WorkerError) as info:
            run_parallel_walk(graph, RaisingWalk(), config, num_workers=2)
        error = info.value
        assert error.kind == "exception"
        assert error.shard in (0, 1)
        # Original exception and the worker-side traceback survive.
        assert "bad start table" in str(error)
        assert str(shards[error.shard].seed) in str(error)
        assert "setup_walkers" in error.worker_traceback
        assert "ValueError" in error.worker_traceback

    def test_shard_timeout_raises_worker_error(self, graph):
        config = WalkConfig(num_walkers=8, max_steps=4)

        class SleepyWalk(UniformWalk):
            def setup_walkers(self, inner_graph, walkers, rng):
                time.sleep(60.0)

        started = time.monotonic()
        with pytest.raises(WorkerError) as info:
            run_parallel_walk(
                graph, SleepyWalk(), config, num_workers=2, shard_timeout=0.5
            )
        assert info.value.kind == "timeout"
        assert time.monotonic() - started < 30.0

    def test_deadline_propagates_to_shards(self, graph):
        config = WalkConfig(num_walkers=20, max_steps=50, record_paths=True)
        result = run_parallel_walk(
            graph, UniformWalk(), config, num_workers=2, deadline=0.0
        )
        assert result.status == "deadline_exceeded"
        assert result.walk_lengths.size == 20
        assert all(len(path) >= 1 for path in result.paths)

    def test_no_deadline_status_complete(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=5)
        result = run_parallel_walk(graph, UniformWalk(), config, num_workers=2)
        assert result.status == "complete"
