"""Unit tests for graph partitioning (KnightKing 1-D and Gemini mirrors)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.generators import (
    truncated_power_law_graph,
    uniform_degree_graph,
)
from repro.graph.partition import (
    ContiguousPartition,
    MirroredPartition,
    partition_graph,
)


@pytest.fixture
def graph():
    return truncated_power_law_graph(500, 2.0, 2, 80, seed=4)


class TestContiguousPartition:
    def test_covers_all_vertices_once(self, graph):
        partition = partition_graph(graph, 4)
        seen = []
        for part in range(partition.num_parts):
            seen.extend(partition.vertices_of(part))
        assert seen == list(range(graph.num_vertices))

    def test_owner_matches_ranges(self, graph):
        partition = partition_graph(graph, 4)
        for part in range(4):
            for vertex in list(partition.vertices_of(part))[:20]:
                assert partition.owner_of(vertex) == part

    def test_owners_vectorised(self, graph):
        partition = partition_graph(graph, 8)
        vertices = np.arange(graph.num_vertices)
        owners = partition.owners(vertices)
        scalar = [partition.owner_of(int(v)) for v in vertices[::37]]
        np.testing.assert_array_equal(owners[::37], scalar)

    def test_load_balance(self, graph):
        partition = partition_graph(graph, 4)
        assert partition.balance_ratio() < 1.5

    def test_load_of_sums_to_total(self, graph):
        partition = partition_graph(graph, 4)
        vertices = sum(partition.load_of(p)[0] for p in range(4))
        edges = sum(partition.load_of(p)[1] for p in range(4))
        assert vertices == graph.num_vertices
        assert edges == graph.num_edges

    def test_single_part(self, graph):
        partition = partition_graph(graph, 1)
        assert partition.owner_of(0) == 0
        assert partition.owner_of(graph.num_vertices - 1) == 0

    def test_parts_equal_vertices(self):
        graph = uniform_degree_graph(4, 2, seed=0)
        partition = partition_graph(graph, 4)
        assert [len(partition.vertices_of(p)) for p in range(4)] == [1] * 4

    def test_errors(self, graph):
        with pytest.raises(PartitionError):
            partition_graph(graph, 0)
        with pytest.raises(PartitionError):
            partition_graph(graph, graph.num_vertices + 1)
        partition = partition_graph(graph, 2)
        with pytest.raises(PartitionError):
            partition.vertices_of(5)

    def test_boundary_validation(self, graph):
        with pytest.raises(PartitionError):
            ContiguousPartition(np.array([1, graph.num_vertices]), graph)
        with pytest.raises(PartitionError):
            ContiguousPartition(np.array([0, 10]), graph)
        with pytest.raises(PartitionError):
            ContiguousPartition(
                np.array([0, 50, 20, graph.num_vertices]), graph
            )


class TestMirroredPartition:
    def test_edge_owner_is_target_master(self, graph):
        mirrored = MirroredPartition(graph, 4)
        for edge in range(0, graph.num_edges, 97):
            target = int(graph.targets[edge])
            assert mirrored.edge_owner(edge) == mirrored.master_of(target)

    def test_mirror_nodes_consistent_with_local_edges(self, graph):
        mirrored = MirroredPartition(graph, 4)
        for vertex in range(0, graph.num_vertices, 53):
            mirrors = set(mirrored.mirror_nodes(vertex).tolist())
            for part in range(4):
                local = mirrored.local_edges(vertex, part)
                assert (part in mirrors) == (local.size > 0)
                for edge in local:
                    assert int(mirrored.edge_owner(int(edge))) == part
            assert mirrored.mirror_count(vertex) == len(mirrors)

    def test_per_node_weight_sums_to_total(self, graph):
        mirrored = MirroredPartition(graph, 4)
        for vertex in range(0, graph.num_vertices, 41):
            assert mirrored.per_node_weight(vertex).sum() == pytest.approx(
                graph.total_out_weight(vertex)
            )

    def test_mirror_counts_property(self, graph):
        mirrored = MirroredPartition(graph, 4)
        counts = mirrored.mirror_counts
        assert counts.shape == (graph.num_vertices,)
        assert counts.max() <= 4
        # total mirrors equals sum of per-vertex counts
        assert mirrored.total_mirrors() == counts.sum()

    def test_hosts_edges(self, graph):
        mirrored = MirroredPartition(graph, 4)
        vertices = np.arange(0, graph.num_vertices, 101)
        nodes = np.zeros(vertices.size, dtype=np.int64)
        hosted = mirrored.hosts_edges(vertices, nodes)
        for lane, vertex in enumerate(vertices):
            assert hosted[lane] == (
                mirrored.local_edges(int(vertex), 0).size > 0
            )

    def test_high_degree_vertex_has_many_mirrors(self):
        # The hub's edges land on every node that owns some leaf.
        from repro.graph.generators import star_graph

        graph = star_graph(63, undirected=True)
        mirrored = MirroredPartition(graph, 4)
        leaf_owners = set(
            mirrored.masters.owners(np.arange(1, 64)).tolist()
        )
        assert set(mirrored.mirror_nodes(0).tolist()) == leaf_owners
        assert mirrored.mirror_count(0) >= 3

    def test_errors(self, graph):
        with pytest.raises(PartitionError):
            MirroredPartition(graph, 0)
