"""Smoke tests for the tracked steps-per-second benchmark harness."""

import json

from repro.bench.perf import (
    PERF_WORKLOADS,
    enforce_engine_floor,
    enforce_obs_overhead,
    format_report,
    run_perf,
    write_report,
)


def test_quick_report_roundtrip(tmp_path):
    report = run_perf(quick=True)
    assert report["quick"] is True
    assert set(report["workloads"]) == {w.name for w in PERF_WORKLOADS}
    for entry in report["workloads"].values():
        assert entry["steps"] > 0
        assert entry["steps_per_sec"] > 0
        assert entry["single_trial_steps_per_sec"] > 0
        assert entry["walker_mode_steps_per_sec"] > 0
        assert entry["auto_policy_steps_per_sec"] > 0
        # The auto-policy run records its per-degree-class decisions.
        assert entry["sampler"]["policy"] == "auto"
        assert entry["sampler"]["chosen_by_class"]
    # The fused kernel engages exactly on the step-paced dynamic
    # workload; node2vec is trial-paced and DeepWalk static.
    assert report["workloads"]["metapath"]["fused"] is True
    assert report["workloads"]["node2vec"]["fused"] is False
    assert report["workloads"]["deepwalk"]["fused"] is False
    assert (
        report["workloads"]["metapath"]["fused_speedup_vs_single_trial"]
        is not None
    )
    # Where the fused kernel never engages the ratio is omitted, not
    # carried as null.
    assert (
        "fused_speedup_vs_single_trial" not in report["workloads"]["deepwalk"]
    )
    assert (
        "fused_speedup_vs_single_trial" not in report["workloads"]["node2vec"]
    )
    # Quick numbers must never be compared against the full-run
    # pre-PR reference.
    assert "speedup_vs_pre_pr" not in report["workloads"]["node2vec"]
    # Update-apply throughput is a top-level section: the floor gate
    # iterates ``workloads`` and must never see it as a walk entry.
    updates = report["update_throughput"]
    assert updates["updates_applied"] > 0
    assert updates["edges_per_sec"] > 0
    assert updates["num_epochs"] > 0
    # The floor gate runs against this schema (a tiny quick run is too
    # noisy to assert it *passes*, only that it evaluates).
    assert isinstance(enforce_engine_floor(report), list)
    assert enforce_engine_floor(report, floor=0.0) == []
    # Observability overhead is likewise a top-level section with the
    # three states the CI gate compares.
    obs = report["obs"]
    assert obs["workload"] == "node2vec"
    assert obs["baseline_steps_per_sec"] > 0
    assert obs["disabled_steps_per_sec"] > 0
    assert obs["enabled_steps_per_sec"] > 0
    assert isinstance(enforce_obs_overhead(report), list)
    assert enforce_obs_overhead(report, limit=10.0) == []
    assert enforce_obs_overhead(report, limit=-10.0) != []

    path = write_report(report, tmp_path / "BENCH_walks.json")
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded == report

    text = format_report(report)
    assert "metapath" in text and "steps/sec" in text
