"""Smoke tests for the tracked steps-per-second benchmark harness."""

import json

from repro.bench.perf import (
    PERF_WORKLOADS,
    format_report,
    run_perf,
    write_report,
)


def test_quick_report_roundtrip(tmp_path):
    report = run_perf(quick=True)
    assert report["quick"] is True
    assert set(report["workloads"]) == {w.name for w in PERF_WORKLOADS}
    for entry in report["workloads"].values():
        assert entry["steps"] > 0
        assert entry["steps_per_sec"] > 0
        assert entry["single_trial_steps_per_sec"] > 0
    # The fused kernel engages exactly on the step-paced dynamic
    # workload; node2vec is trial-paced and DeepWalk static.
    assert report["workloads"]["metapath"]["fused"] is True
    assert report["workloads"]["node2vec"]["fused"] is False
    assert report["workloads"]["deepwalk"]["fused"] is False
    assert (
        report["workloads"]["metapath"]["fused_speedup_vs_single_trial"]
        is not None
    )
    assert report["workloads"]["deepwalk"]["fused_speedup_vs_single_trial"] is None
    # Quick numbers must never be compared against the full-run
    # pre-PR reference.
    assert "speedup_vs_pre_pr" not in report["workloads"]["node2vec"]

    path = write_report(report, tmp_path / "BENCH_walks.json")
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded == report

    text = format_report(report)
    assert "metapath" in text and "steps/sec" in text
