"""Tests for the second-order precompute baseline and memory estimator."""

import numpy as np
import pytest

from repro.baselines.precompute import (
    ALIAS_BYTES_PER_ENTRY,
    ITS_BYTES_PER_ENTRY,
    PrecomputedNode2Vec,
    estimate_from_degree_stats,
    second_order_table_bytes,
    second_order_table_entries,
)
from repro.errors import SamplingError
from repro.graph.builder import from_edges
from repro.graph.generators import uniform_degree_graph

from tests.helpers import (
    assert_matches_distribution,
    diamond_graph,
    exact_node2vec_law,
)


class TestEstimator:
    def test_entries_formula(self):
        graph = diamond_graph()
        # sum over edges (t, v) of out_degree(v)
        expected = sum(
            graph.out_degree(int(target)) for target in graph.targets
        )
        assert second_order_table_entries(graph) == expected

    def test_bytes_scaling(self):
        graph = diamond_graph()
        its = second_order_table_bytes(graph, ITS_BYTES_PER_ENTRY)
        alias = second_order_table_bytes(graph, ALIAS_BYTES_PER_ENTRY)
        assert alias == 2 * its

    def test_undirected_second_moment_identity(self):
        """For undirected graphs the estimator equals |V| * E[d^2]."""
        graph = uniform_degree_graph(100, 4, seed=0, undirected=True)
        degrees = graph.out_degrees().astype(float)
        exact = second_order_table_entries(graph)
        moment = estimate_from_degree_stats(
            graph.num_vertices, degrees.mean(), degrees.var(), 1
        )
        assert exact == pytest.approx(moment, rel=1e-9)

    def test_paper_twitter_magnitude(self):
        """Table 2's Twitter stats give the paper's ~PB-scale numbers."""
        its = estimate_from_degree_stats(41.7e6, 70.4, 6.42e6, ITS_BYTES_PER_ENTRY)
        alias = estimate_from_degree_stats(
            41.7e6, 70.4, 6.42e6, ALIAS_BYTES_PER_ENTRY
        )
        assert 0.5e15 < its < 2e15  # paper: ~970 TB
        assert 1e15 < alias < 4e15  # paper: ~1.89 PB


class TestPrecomputedOracle:
    def test_table_count_matches_enumeration(self):
        graph = uniform_degree_graph(40, 4, seed=1, undirected=True)
        oracle = PrecomputedNode2Vec(graph, p=2.0, q=0.5, biased=False)
        # One start table per vertex with out-edges, plus one state
        # table per *distinct* (prev, cur) pair with prev -> cur stored.
        expected = 0
        for current in range(graph.num_vertices):
            degree = graph.out_degree(current)
            if degree == 0:
                continue
            expected += degree  # start table
            for previous in np.unique(graph.neighbors(current)):
                if graph.has_edge(int(previous), current):
                    expected += degree
        assert oracle.table_entries == expected
        # The per-edge estimator upper-bounds the deduplicated build
        # (parallel edges collapse into one state).
        assert second_order_table_entries(graph) + graph.num_edges >= expected
        assert oracle.memory_bytes() == oracle.table_entries * ALIAS_BYTES_PER_ENTRY

    def test_first_step_law(self):
        graph = diamond_graph(weights=True)
        oracle = PrecomputedNode2Vec(graph, p=2.0, q=0.5, biased=True)
        rng = np.random.default_rng(2)
        samples = [oracle.sample(1, -1, rng) for _ in range(10_000)]
        law = exact_node2vec_law(graph, 1, -1, 2.0, 0.5, True)
        assert_matches_distribution(samples, law)

    def test_second_order_law(self):
        graph = diamond_graph()
        oracle = PrecomputedNode2Vec(graph, p=0.5, q=2.0, biased=False)
        rng = np.random.default_rng(3)
        samples = [oracle.sample(2, 0, rng) for _ in range(10_000)]
        law = exact_node2vec_law(graph, 2, 0, 0.5, 2.0, False)
        assert_matches_distribution(samples, law)

    def test_unknown_state_raises(self):
        graph = from_edges(3, [(0, 1), (1, 2)])
        oracle = PrecomputedNode2Vec(graph, p=1.0, q=1.0)
        rng = np.random.default_rng(4)
        with pytest.raises(SamplingError):
            oracle.sample(2, 1, rng)  # vertex 2 has no out-edges
