"""Unit tests for the WalkerProgram API surface."""

import numpy as np
import pytest

from repro.core.program import StateQuery, WalkerProgram
from repro.core.walker import WalkerSet
from repro.errors import ProgramError

from tests.helpers import diamond_graph


class TestDefaults:
    def test_static_defaults(self):
        program = WalkerProgram()
        graph = diamond_graph()
        assert program.edge_static_comp(graph) is None
        assert program.dynamic_upper_bound(graph, 0) == 1.0
        assert program.dynamic_lower_bound(graph, 0) == 0.0
        walkers = WalkerSet(np.array([0]))
        assert (
            program.edge_dynamic_comp(graph, walkers.view(0), 0) == 1.0
        )
        assert program.state_query(graph, walkers.view(0), 0) is None
        assert program.outlier_specs(graph, walkers.view(0)) == ()
        assert program.should_continue(graph, walkers.view(0))

    def test_bound_arrays_loop_scalar_hooks(self):
        class Custom(WalkerProgram):
            dynamic = True

            def dynamic_upper_bound(self, graph, vertex):
                return float(vertex + 1)

        graph = diamond_graph()
        uppers = Custom().upper_bound_array(graph)
        assert uppers.tolist() == [1.0, 2.0, 3.0, 4.0]
        lowers = Custom().lower_bound_array(graph)
        assert lowers.tolist() == [0.0] * 4

    def test_default_answer_is_neighbour_query(self):
        program = WalkerProgram()
        graph = diamond_graph()
        assert program.answer_state_query(graph, StateQuery(0, 1)) is True
        assert program.answer_state_query(graph, StateQuery(0, 3)) is False

    def test_batch_hooks_raise_without_implementation(self):
        program = WalkerProgram()
        graph = diamond_graph()
        walkers = WalkerSet(np.array([0]))
        with pytest.raises(ProgramError):
            program.batch_dynamic_comp(
                graph, walkers, np.array([0]), np.array([0])
            )
        assert program.batch_outliers(graph, walkers, np.array([0])) is None


class TestBatchQueryDefaults:
    def test_batch_state_queries_loops_scalar_hook(self):
        class Curious(WalkerProgram):
            dynamic = True
            order = 2

            def state_query(self, graph, walker, edge_index):
                target = int(graph.targets[edge_index])
                if target == 3:
                    return None
                return StateQuery(target_vertex=target, payload=walker.current)

        graph = diamond_graph()
        walkers = WalkerSet(np.array([0, 1]))
        program = Curious()
        edge_to_1 = graph.edge_index(0, 1)
        edge_to_3 = graph.edge_index(1, 3)
        targets, payloads = program.batch_state_queries(
            graph, walkers, np.array([0, 1]), np.array([edge_to_1, edge_to_3])
        )
        assert targets.tolist() == [1, -1]
        assert payloads[0] == 0

    def test_batch_answer_queries_default(self):
        program = WalkerProgram()
        graph = diamond_graph()
        answers = program.batch_answer_queries(
            graph, np.array([0, 0]), np.array([1, 3])
        )
        assert answers.tolist() == [1.0, 0.0]

    def test_batch_dynamic_with_answers_delegates(self):
        class Flat(WalkerProgram):
            dynamic = True
            supports_batch = True

            def batch_dynamic_comp(self, graph, walkers, walker_ids, edges):
                return np.full(walker_ids.size, 0.5)

        graph = diamond_graph()
        walkers = WalkerSet(np.array([0]))
        values = Flat().batch_dynamic_with_answers(
            graph,
            walkers,
            np.array([0]),
            np.array([0]),
            np.zeros(1),
            np.zeros(1, dtype=bool),
        )
        assert values.tolist() == [0.5]


class TestValidate:
    def test_bad_order(self):
        program = WalkerProgram()
        program.order = 3
        with pytest.raises(ProgramError):
            program.validate()

    def test_second_order_must_be_dynamic(self):
        program = WalkerProgram()
        program.order = 2
        program.dynamic = False
        with pytest.raises(ProgramError):
            program.validate()

    def test_repr(self):
        assert "static" in repr(WalkerProgram())
