"""Property-based invariants over random graphs and configurations.

Hypothesis drives the engines across arbitrary topologies and walk
settings; the invariants below must hold for *any* of them:

* every recorded walk step follows a stored edge;
* step counters, termination accounting, and trial counters agree;
* rejection sampling's Pd-evaluation count never exceeds its trials;
* the distributed engine always agrees with the local engine on walk
  lengths given the same seed-independent termination structure.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Node2Vec, UniformWalk
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.builder import from_arrays


@st.composite
def random_graphs(draw):
    """Small random directed graphs, possibly with dead ends."""
    num_vertices = draw(st.integers(3, 12))
    num_edges = draw(st.integers(2, 40))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_vertices, size=num_edges)
    targets = rng.integers(0, num_vertices, size=num_edges)
    keep = sources != targets
    if not keep.any():
        sources, targets = np.array([0]), np.array([1])
    else:
        sources, targets = sources[keep], targets[keep]
    undirected = draw(st.booleans())
    return from_arrays(
        num_vertices, sources, targets, undirected=undirected
    )


@settings(max_examples=40, deadline=None)
@given(
    graph=random_graphs(),
    max_steps=st.integers(1, 12),
    num_walkers=st.integers(1, 25),
    seed=st.integers(0, 1000),
)
def test_uniform_walk_invariants(graph, max_steps, num_walkers, seed):
    config = WalkConfig(
        num_walkers=num_walkers,
        max_steps=max_steps,
        record_paths=True,
        seed=seed,
    )
    result = WalkEngine(graph, UniformWalk(), config).run()

    # Paths follow edges and lengths match the step counters.
    for walker_id, path in enumerate(result.paths):
        assert len(path) == result.walkers.steps[walker_id] + 1
        assert len(path) <= max_steps + 1
        for source, target in zip(path[:-1], path[1:]):
            assert graph.has_edge(int(source), int(target))

    # Every walker terminated exactly once.
    assert result.stats.termination.total == num_walkers
    # Step accounting is exact.
    assert result.stats.total_steps == int(result.walkers.steps.sum())
    assert not result.walkers.alive.any()


@settings(max_examples=25, deadline=None)
@given(
    graph=random_graphs(),
    p=st.sampled_from([0.25, 0.5, 1.0, 2.0]),
    q=st.sampled_from([0.25, 1.0, 4.0]),
    seed=st.integers(0, 1000),
)
def test_node2vec_counter_invariants(graph, p, q, seed):
    config = WalkConfig(num_walkers=10, max_steps=6, seed=seed)
    result = WalkEngine(
        graph, Node2Vec(p=p, q=q, biased=False), config
    ).run()
    counters = result.stats.counters
    assert counters.pd_evaluations + counters.pre_accepts <= (
        counters.trials + counters.appendix_trials
    )
    assert counters.accepts <= counters.trials
    assert result.stats.total_steps >= counters.accepts
    assert result.stats.termination.total == 10


@settings(max_examples=15, deadline=None)
@given(
    graph=random_graphs(),
    num_nodes=st.integers(1, 3),
    seed=st.integers(0, 500),
)
def test_distributed_engine_invariants(graph, num_nodes, seed):
    num_nodes = min(num_nodes, graph.num_vertices)
    config = WalkConfig(
        num_walkers=8, max_steps=5, record_paths=True, seed=seed
    )
    result = DistributedWalkEngine(
        graph, UniformWalk(), config, num_nodes=num_nodes
    ).run()
    for path in result.paths:
        for source, target in zip(path[:-1], path[1:]):
            assert graph.has_edge(int(source), int(target))
    assert result.cluster.num_supersteps == result.stats.iterations
    assert result.cluster.simulated_seconds > 0
    # Message totals are consistent: queries come in request/response
    # pairs.
    from repro.cluster import MessageKind

    network = result.cluster.network
    assert network.total_messages(MessageKind.STATE_QUERY) == (
        network.total_messages(MessageKind.QUERY_RESPONSE)
    )


@settings(max_examples=20, deadline=None)
@given(
    termination=st.floats(min_value=0.05, max_value=0.9),
    seed=st.integers(0, 1000),
)
def test_geometric_termination_bounds(termination, seed):
    """Walk lengths under a termination coin are finite and the
    termination reason accounting covers every walker."""
    graph = from_arrays(
        6,
        np.array([0, 1, 2, 3, 4, 5]),
        np.array([1, 2, 3, 4, 5, 0]),
    )
    config = WalkConfig(
        num_walkers=30,
        max_steps=None,
        termination_probability=termination,
        seed=seed,
    )
    result = WalkEngine(graph, UniformWalk(), config).run()
    breakdown = result.stats.termination
    assert breakdown.by_probability + breakdown.by_dead_end == 30
    assert result.walk_lengths.max() < 10_000
