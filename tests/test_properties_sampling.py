"""Additional hypothesis property tests across the sampling stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.full_scan import segmented_sample
from repro.graph.builder import from_arrays
from repro.graph.partition import partition_graph
from repro.graph.transform import induced_subgraph, reverse_graph
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables


@st.composite
def weighted_fans(draw):
    """A single-source fan graph with random positive weights."""
    weights = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=50.0),
            min_size=1,
            max_size=12,
        )
    )
    edges = [(0, i + 1, w) for i, w in enumerate(weights)]
    sources = np.zeros(len(weights), dtype=np.int64)
    targets = np.arange(1, len(weights) + 1, dtype=np.int64)
    graph = from_arrays(
        len(weights) + 1, sources, targets, weights=np.asarray(weights)
    )
    return graph, np.asarray(weights)


@settings(max_examples=30, deadline=None)
@given(data=weighted_fans(), seed=st.integers(0, 10_000))
def test_alias_and_its_sample_the_same_law(data, seed):
    """Both static samplers approximate the same frequencies."""
    graph, weights = data
    draws = 3000
    alias_samples = VertexAliasTables(graph).sample_batch(
        np.zeros(draws, dtype=np.int64), np.random.default_rng(seed)
    )
    its_samples = VertexITSTables(graph).sample_batch(
        np.zeros(draws, dtype=np.int64), np.random.default_rng(seed + 1)
    )
    target = weights / weights.sum()
    for samples in (alias_samples, its_samples):
        frequencies = np.bincount(samples, minlength=weights.size) / draws
        assert np.abs(frequencies - target).max() < 0.12


@settings(max_examples=30, deadline=None)
@given(
    masses=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=6),
        min_size=1,
        max_size=5,
    ),
    seed=st.integers(0, 10_000),
)
def test_segmented_sample_respects_segments(masses, seed):
    """Choices always land inside their own segment with positive mass."""
    flat = np.concatenate([np.asarray(m) for m in masses])
    offsets = np.zeros(len(masses) + 1, dtype=np.int64)
    np.cumsum([len(m) for m in masses], out=offsets[1:])
    rng = np.random.default_rng(seed)
    choices, totals = segmented_sample(flat, offsets, rng)
    grand_total = flat.sum()
    for index, mass in enumerate(masses):
        total = sum(mass)
        assert totals[index] == pytest.approx(total)
        if total == 0:
            assert choices[index] == -1
        else:
            low, high = offsets[index], offsets[index + 1]
            assert low <= choices[index] < high
            # Weight-proportional selection holds unless the segment's
            # mass is below the global prefix sum's float resolution
            # (documented caveat of segmented_sample).
            if total > 1e-12 * grand_total:
                assert flat[choices[index]] > 0


@st.composite
def random_csr_graphs(draw):
    num_vertices = draw(st.integers(2, 15))
    num_edges = draw(st.integers(1, 50))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_vertices, size=num_edges)
    targets = rng.integers(0, num_vertices, size=num_edges)
    return from_arrays(num_vertices, sources, targets)


@settings(max_examples=40, deadline=None)
@given(graph=random_csr_graphs(), parts=st.integers(1, 6))
def test_partition_owner_consistency(graph, parts):
    parts = min(parts, graph.num_vertices)
    partition = partition_graph(graph, parts)
    owners = partition.owners(np.arange(graph.num_vertices))
    # Every vertex has exactly one owner, owners are sorted ranges.
    assert owners.min() >= 0 and owners.max() < parts
    assert np.all(np.diff(owners) >= 0)
    for part in range(parts):
        for vertex in partition.vertices_of(part):
            assert owners[vertex] == part


@settings(max_examples=40, deadline=None)
@given(graph=random_csr_graphs())
def test_reverse_is_involutive(graph):
    assert reverse_graph(reverse_graph(graph)) == graph


@settings(max_examples=30, deadline=None)
@given(graph=random_csr_graphs(), seed=st.integers(0, 1000))
def test_induced_subgraph_edges_are_original_edges(graph, seed):
    rng = np.random.default_rng(seed)
    size = rng.integers(1, graph.num_vertices + 1)
    chosen = rng.choice(graph.num_vertices, size=size, replace=False)
    subgraph, mapping = induced_subgraph(graph, chosen)
    for new_source in range(subgraph.num_vertices):
        for new_target in subgraph.neighbors(new_source):
            assert graph.has_edge(
                int(mapping[new_source]), int(mapping[new_target])
            )


@settings(max_examples=25, deadline=None)
@given(
    paths=st.lists(
        st.lists(st.integers(0, 99), min_size=1, max_size=12),
        min_size=1,
        max_size=10,
    )
)
def test_corpus_roundtrip_property(paths, tmp_path_factory):
    from repro.analysis import load_corpus, save_corpus

    directory = tmp_path_factory.mktemp("corpus")
    target = directory / "walks.txt"
    save_corpus([np.asarray(p) for p in paths], target)
    loaded = load_corpus(target)
    assert [p.tolist() for p in loaded] == paths
