"""Correctness tests for rejection sampling (paper section 4).

The key property: for any static component Ps (handled by alias/ITS
pre-processing) and any dynamic component Pd bounded by the declared
envelope, rejection sampling draws edges with probability proportional
to Ps * Pd — *exactly*, with or without the lower-bound and
outlier-folding optimizations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProgramError, SamplingError
from repro.graph.builder import from_edges
from repro.sampling.alias import VertexAliasTables
from repro.sampling.its import VertexITSTables
from repro.sampling.rejection import (
    OutlierSpec,
    RejectionSampler,
    SamplingCounters,
    expected_trials,
)

from tests.helpers import assert_matches_distribution


def fan_graph(num_edges: int, weights=None):
    """Vertex 0 with ``num_edges`` out-edges to 1..n."""
    edges = [(0, i + 1) for i in range(num_edges)]
    if weights is not None:
        edges = [(u, v, w) for (u, v), w in zip(edges, weights)]
    return from_edges(num_edges + 1, edges)


def sample_many(sampler, pd_values, upper, count, lower=0.0, outliers=(), seed=0, counters=None):
    rng = np.random.default_rng(seed)
    pd_of = lambda edge: float(pd_values[edge])  # noqa: E731
    return [
        sampler.sample(
            0, rng, pd_of, upper, lower=lower, outliers=outliers, counters=counters
        )
        for _ in range(count)
    ]


class TestUnbiasedRejection:
    def test_matches_target_distribution(self):
        graph = fan_graph(4)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([1.0, 2.0, 2.0, 0.5])
        samples = sample_many(sampler, pd, upper=2.0, count=30_000)
        assert_matches_distribution(samples, pd)

    def test_zero_pd_edges_never_sampled(self):
        graph = fan_graph(3)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([1.0, 0.0, 0.5])
        samples = sample_many(sampler, pd, upper=1.0, count=5000)
        assert 1 not in set(samples)

    def test_its_static_tables_work_too(self):
        graph = fan_graph(4)
        sampler = RejectionSampler(VertexITSTables(graph))
        pd = np.array([1.0, 3.0, 0.5, 2.0])
        samples = sample_many(sampler, pd, upper=3.0, count=30_000)
        assert_matches_distribution(samples, pd)


class TestBiasedRejection:
    def test_static_times_dynamic(self):
        weights = [1.0, 4.0, 2.0, 3.0]
        graph = fan_graph(4, weights)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([2.0, 0.5, 1.0, 1.5])
        samples = sample_many(sampler, pd, upper=2.0, count=40_000)
        assert_matches_distribution(samples, np.asarray(weights) * pd)


class TestLowerBound:
    def test_distribution_unchanged(self):
        graph = fan_graph(4)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([1.0, 2.0, 1.5, 0.5])
        samples = sample_many(
            sampler, pd, upper=2.0, count=30_000, lower=0.5
        )
        assert_matches_distribution(samples, pd)

    def test_reduces_pd_evaluations(self):
        graph = fan_graph(4)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([1.0, 2.0, 1.5, 1.0])
        with_counter = SamplingCounters()
        without_counter = SamplingCounters()
        sample_many(
            sampler, pd, upper=2.0, count=4000, lower=1.0, counters=with_counter
        )
        sample_many(
            sampler, pd, upper=2.0, count=4000, lower=0.0, counters=without_counter
        )
        assert with_counter.pd_evaluations < without_counter.pd_evaluations
        assert with_counter.pre_accepts > 0

    def test_tight_lower_bound_eliminates_evaluations(self):
        """lower == upper == Pd everywhere: pure alias sampling."""
        graph = fan_graph(3)
        sampler = RejectionSampler(VertexAliasTables(graph))
        counters = SamplingCounters()
        sample_many(
            sampler,
            np.ones(3),
            upper=1.0,
            count=2000,
            lower=1.0,
            counters=counters,
        )
        assert counters.pd_evaluations == 0
        assert counters.trials == 2000


class TestOutlierFolding:
    def test_distribution_with_outlier(self):
        graph = fan_graph(5)
        sampler = RejectionSampler(VertexAliasTables(graph))
        # Edge 0 towers at 8.0; envelope covers the rest at 1.0.
        pd = np.array([8.0, 1.0, 0.5, 1.0, 0.75])
        outliers = (OutlierSpec(edge=0, pd_bound=8.0, width=1.0),)
        samples = sample_many(
            sampler, pd, upper=1.0, count=40_000, outliers=outliers
        )
        assert_matches_distribution(samples, pd)

    def test_folding_reduces_trials(self):
        graph = fan_graph(64)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.ones(64)
        pd[0] = 8.0
        folded = SamplingCounters()
        naive = SamplingCounters()
        outliers = (OutlierSpec(edge=0, pd_bound=8.0, width=1.0),)
        sample_many(
            sampler, pd, upper=1.0, count=3000, outliers=outliers, counters=folded
        )
        sample_many(sampler, pd, upper=8.0, count=3000, counters=naive)
        assert folded.trials < naive.trials / 2

    def test_overestimated_bound_still_exact(self):
        """The correction divides by the *estimated* appendix area, so a
        conservative bound costs trials but not correctness."""
        graph = fan_graph(4)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([3.0, 1.0, 0.5, 1.0])
        outliers = (OutlierSpec(edge=0, pd_bound=6.0, width=1.0),)
        samples = sample_many(
            sampler, pd, upper=1.0, count=40_000, outliers=outliers
        )
        assert_matches_distribution(samples, pd)

    def test_overestimated_width_still_exact(self):
        weights = [2.0, 1.0, 1.0]
        graph = fan_graph(3, weights)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([4.0, 1.0, 1.0])
        outliers = (OutlierSpec(edge=0, pd_bound=4.0, width=5.0),)
        samples = sample_many(
            sampler, pd, upper=1.0, count=40_000, outliers=outliers
        )
        assert_matches_distribution(samples, np.asarray(weights) * pd)

    def test_multiple_outliers(self):
        graph = fan_graph(6)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([5.0, 1.0, 4.0, 0.5, 1.0, 0.25])
        outliers = (
            OutlierSpec(edge=0, pd_bound=5.0, width=1.0),
            OutlierSpec(edge=2, pd_bound=4.0, width=1.0),
        )
        samples = sample_many(
            sampler, pd, upper=1.0, count=50_000, outliers=outliers
        )
        assert_matches_distribution(samples, pd)

    def test_outlier_below_envelope_is_harmless(self):
        graph = fan_graph(3)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([1.0, 0.5, 1.0])
        outliers = (OutlierSpec(edge=0, pd_bound=1.0, width=1.0),)
        samples = sample_many(
            sampler, pd, upper=1.0, count=20_000, outliers=outliers
        )
        assert_matches_distribution(samples, pd)

    def test_exact_static_mass_override(self):
        graph = fan_graph(3, [2.0, 1.0, 1.0])
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([4.0, 1.0, 1.0])
        outliers = (
            OutlierSpec(edge=0, pd_bound=4.0, width=2.0, static_mass=2.0),
        )
        samples = sample_many(
            sampler, pd, upper=1.0, count=40_000, outliers=outliers
        )
        assert_matches_distribution(samples, np.array([8.0, 1.0, 1.0]))


class TestValidation:
    def test_bad_bounds(self):
        graph = fan_graph(2)
        sampler = RejectionSampler(VertexAliasTables(graph))
        rng = np.random.default_rng(0)
        with pytest.raises(ProgramError):
            sampler.try_once(0, rng, lambda e: 1.0, upper=0.0)
        with pytest.raises(ProgramError):
            sampler.try_once(0, rng, lambda e: 1.0, upper=1.0, lower=2.0)
        with pytest.raises(ProgramError):
            sampler.try_once(0, rng, lambda e: 1.0, upper=1.0, lower=-0.1)

    def test_outlier_bound_below_envelope(self):
        graph = fan_graph(2)
        sampler = RejectionSampler(VertexAliasTables(graph))
        rng = np.random.default_rng(0)
        with pytest.raises(ProgramError):
            sampler.try_once(
                0,
                rng,
                lambda e: 1.0,
                upper=2.0,
                outliers=(OutlierSpec(edge=0, pd_bound=1.0),),
            )

    def test_negative_pd_rejected(self):
        graph = fan_graph(2)
        sampler = RejectionSampler(VertexAliasTables(graph))
        rng = np.random.default_rng(0)
        with pytest.raises(ProgramError):
            sampler.sample(0, rng, lambda e: -1.0, upper=1.0)

    def test_dead_end_vertex(self):
        graph = from_edges(2, [(0, 1)])
        sampler = RejectionSampler(VertexAliasTables(graph))
        rng = np.random.default_rng(0)
        with pytest.raises(SamplingError):
            sampler.try_once(1, rng, lambda e: 1.0, upper=1.0)

    def test_zero_mass_exhausts_max_trials(self):
        graph = fan_graph(2)
        sampler = RejectionSampler(VertexAliasTables(graph))
        rng = np.random.default_rng(0)
        with pytest.raises(SamplingError):
            sampler.sample(0, rng, lambda e: 0.0, upper=1.0, max_trials=50)


class TestExpectedTrials:
    def test_formula(self):
        static = np.array([1.0, 1.0, 1.0, 1.0])
        dynamic = np.array([1.0, 2.0, 2.0, 0.5])
        assert expected_trials(static, dynamic, 2.0) == pytest.approx(
            2.0 * 4.0 / 5.5
        )

    def test_zero_mass(self):
        with pytest.raises(SamplingError):
            expected_trials(np.ones(3), np.zeros(3), 1.0)

    def test_empirical_trials_match_formula(self):
        graph = fan_graph(8)
        sampler = RejectionSampler(VertexAliasTables(graph))
        pd = np.array([1.0, 0.25, 0.5, 1.0, 0.75, 0.25, 0.5, 1.0])
        counters = SamplingCounters()
        count = 20_000
        sample_many(sampler, pd, upper=1.0, count=count, counters=counters)
        predicted = expected_trials(np.ones(8), pd, 1.0)
        assert counters.trials / count == pytest.approx(predicted, rel=0.05)


class TestCounters:
    def test_merge_and_reset(self):
        first = SamplingCounters(trials=3, pd_evaluations=2, accepts=1)
        second = SamplingCounters(trials=1, pre_accepts=4, appendix_trials=2)
        first.merge(second)
        assert first.trials == 4
        assert first.pre_accepts == 4
        assert first.appendix_trials == 2
        first.reset()
        assert first.trials == 0 and first.accepts == 0


@settings(max_examples=25, deadline=None)
@given(
    pd_values=st.lists(
        st.floats(min_value=0.0, max_value=4.0), min_size=2, max_size=8
    ),
    seed=st.integers(0, 1000),
)
def test_rejection_exactness_property(pd_values, seed):
    """For arbitrary bounded Pd, sampled frequencies track Ps * Pd."""
    pd = np.asarray(pd_values)
    if pd.sum() <= 0.1:
        return
    graph = fan_graph(pd.size)
    sampler = RejectionSampler(VertexAliasTables(graph))
    samples = sample_many(
        sampler, pd, upper=4.0, count=4000, seed=seed
    )
    counts = np.bincount(samples, minlength=pd.size)
    assert counts[pd == 0].sum() == 0
    # Loose frequency check (tight chi-square runs in the unit tests).
    frequencies = counts / counts.sum()
    target = pd / pd.sum()
    assert np.abs(frequencies - target).max() < 0.08
