"""Unit tests for the benchmark result tables."""

import pytest

from repro.bench.reporting import ResultTable, format_seconds, format_speedup


class TestFormatting:
    def test_format_seconds_ranges(self):
        assert format_seconds(123.4) == "123"
        assert format_seconds(12.345) == "12.35"
        assert format_seconds(0.01234) == "0.0123"

    def test_format_speedup(self):
        assert format_speedup(7.931) == "7.93"
        assert format_speedup(1152.03) == "1152"
        assert format_speedup(42.0, estimated=True) == "42.00*"


class TestResultTable:
    def test_add_row_and_format(self):
        table = ResultTable("Demo", ["a", "bb"])
        table.add_row(1, "x")
        table.add_row("long-cell", 2)
        text = table.format()
        assert "Demo" in text
        assert "long-cell" in text
        lines = text.splitlines()
        assert lines[1] == "=" * len("Demo")

    def test_row_arity_checked(self):
        table = ResultTable("t", ["one"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_column_access(self):
        table = ResultTable("t", ["name", "value"])
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("value") == ["1", "2"]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_notes_rendered(self):
        table = ResultTable("t", ["c"])
        table.add_note("caveat emptor")
        assert "note: caveat emptor" in table.format()
        assert str(table) == table.format()
