"""Tests for Random Walk with Restart and the teleport hook."""

import numpy as np
import pytest

from repro.algorithms import RandomWalkWithRestart, rwr_config, rwr_scores
from repro.algorithms.rwr import HOME_STATE
from repro.cluster import DistributedWalkEngine, MessageKind
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ProgramError
from repro.graph.generators import ring_graph, uniform_degree_graph

from tests.helpers import two_triangle_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(150, 5, seed=0, undirected=True)


class TestConstruction:
    def test_invalid_restart_probability(self):
        with pytest.raises(ProgramError):
            RandomWalkWithRestart(0.0)
        with pytest.raises(ProgramError):
            RandomWalkWithRestart(1.0)

    def test_config_defaults(self):
        config = rwr_config()
        assert config.max_steps == 400
        assert config.record_paths


class TestRestartBehaviour:
    def test_homes_recorded(self, graph):
        engine = WalkEngine(
            graph,
            RandomWalkWithRestart(0.2),
            WalkConfig(num_walkers=20, max_steps=5),
        )
        homes = engine.walkers.state(HOME_STATE)
        np.testing.assert_array_equal(
            homes, np.arange(20) % graph.num_vertices
        )

    def test_paths_jump_back_home(self, graph):
        restart = 0.3
        config = WalkConfig(
            num_walkers=200, max_steps=30, record_paths=True, seed=1
        )
        result = WalkEngine(graph, RandomWalkWithRestart(restart), config).run()
        # Any transition that is not a stored edge must be a jump home.
        for path in result.paths:
            home = path[0]
            for source, target in zip(path[:-1], path[1:]):
                if not graph.has_edge(int(source), int(target)):
                    assert target == home
        # The teleport counter tracks the restart probability exactly.
        assert result.stats.teleports / result.stats.total_steps == (
            pytest.approx(restart, abs=0.03)
        )

    def test_restart_rate_scales(self, graph):
        rates = {}
        for restart in (0.1, 0.5):
            config = WalkConfig(
                num_walkers=300, max_steps=20, record_paths=True, seed=2
            )
            result = WalkEngine(
                graph, RandomWalkWithRestart(restart), config
            ).run()
            homes = np.asarray([p[0] for p in result.paths])
            home_visits = sum(
                int(np.count_nonzero(path[1:] == home))
                for path, home in zip(result.paths, homes)
            )
            rates[restart] = home_visits / sum(
                len(p) - 1 for p in result.paths
            )
        assert rates[0.5] > 2 * rates[0.1]

    def test_walk_lengths_unaffected_by_restarts(self, graph):
        config = WalkConfig(num_walkers=50, max_steps=25)
        result = WalkEngine(graph, RandomWalkWithRestart(0.4), config).run()
        assert np.all(result.walk_lengths == 25)


class TestScores:
    def test_scores_concentrate_near_home(self):
        graph = two_triangle_graph()
        num_walkers = 2000
        config = WalkConfig(
            num_walkers=num_walkers,
            max_steps=50,
            record_paths=True,
            seed=3,
            start_vertices=np.ones(num_walkers, dtype=np.int64),
        )
        result = WalkEngine(graph, RandomWalkWithRestart(0.3), config).run()
        scores = rwr_scores(result, source=1, num_vertices=5)
        assert scores.sum() == pytest.approx(1.0)
        # Home vertex and its triangle get more mass than the far one.
        assert scores[1] == scores.max()
        assert scores[2] > scores[4]

    def test_scores_require_paths(self, graph):
        config = WalkConfig(num_walkers=5, max_steps=5)
        result = WalkEngine(graph, RandomWalkWithRestart(0.2), config).run()
        with pytest.raises(ProgramError):
            rwr_scores(result, 0, graph.num_vertices)


class TestDistributedTeleports:
    def test_teleports_count_migrations(self):
        graph = ring_graph(40, undirected=True)
        config = WalkConfig(
            num_walkers=100, max_steps=20, record_paths=True, seed=4
        )
        result = DistributedWalkEngine(
            graph, RandomWalkWithRestart(0.4), config, num_nodes=4
        ).run()
        # Restart jumps across the ring routinely change owners.
        assert (
            result.cluster.network.total_messages(MessageKind.WALKER_MIGRATE)
            > 0
        )
        # Paths still reconstruct correctly.
        for path in result.paths:
            assert len(path) == 21
