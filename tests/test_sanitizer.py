"""Tests for the runtime determinism sanitizer (repro.lint.sanitizer)."""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, Node2Vec, UniformWalk
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.graph.generators import uniform_degree_graph
from repro.lint.sanitizer import DeterminismTracer, TracedRNG, run_sanitized


@pytest.fixture(scope="module")
def graph():
    return uniform_degree_graph(60, 4, seed=3, undirected=True)


class TestTracer:
    def test_traced_rng_preserves_draws(self):
        tracer = DeterminismTracer()
        plain = np.random.default_rng(7)
        traced = TracedRNG(np.random.default_rng(7), tracer)
        np.testing.assert_array_equal(
            plain.integers(0, 100, size=10), traced.integers(0, 100, size=10)
        )
        np.testing.assert_allclose(plain.random(5), traced.random(5))
        assert tracer.num_events == 2
        assert tracer.kinds == ["rng", "rng"]

    def test_identical_streams_hash_identically(self):
        tracers = []
        for _ in range(2):
            tracer = DeterminismTracer()
            rng = tracer.trace_rng(np.random.default_rng(11))
            rng.random(8)
            tracer.record_transition(
                "move", np.arange(4), np.array([1, 2, 3, 4])
            )
            tracers.append(tracer)
        assert tracers[0].rolling_hash() == tracers[1].rolling_hash()

    def test_different_draws_hash_differently(self):
        hashes = []
        for seed in (0, 1):
            tracer = DeterminismTracer()
            tracer.trace_rng(np.random.default_rng(seed)).random(8)
            hashes.append(tracer.rolling_hash())
        assert hashes[0] != hashes[1]


class TestRunSanitized:
    def test_requires_two_runs(self, graph):
        with pytest.raises(ValueError):
            run_sanitized(
                lambda: WalkEngine(graph, UniformWalk(), WalkConfig(max_steps=3)),
                runs=1,
            )

    def test_local_engine_is_deterministic(self, graph):
        config = WalkConfig(num_walkers=25, max_steps=8, seed=5)

        def factory():
            return WalkEngine(graph, Node2Vec(p=2.0, q=0.5), config)

        report = run_sanitized(factory)
        assert report.deterministic
        assert report.divergence is None
        assert report.events[0] > 0
        assert report.events[0] == report.events[1]
        assert report.rolling_hashes[0] == report.rolling_hashes[1]
        assert report.kind_counts.get("rng", 0) > 0
        assert report.kind_counts.get("walker", 0) > 0
        assert "deterministic" in report.summary()

    def test_distributed_engine_traces_deliveries(self, graph):
        config = WalkConfig(num_walkers=25, max_steps=6, seed=5)

        def factory():
            return DistributedWalkEngine(
                graph, DeepWalk(), config, num_nodes=4
            )

        report = run_sanitized(factory)
        assert report.deterministic
        assert report.kind_counts.get("message", 0) > 0

    def test_catches_unseeded_rng_divergence(self, graph):
        """The acceptance property: an unseeded generator in workload
        setup makes the two runs diverge, and the report localizes it."""

        def nondeterministic_factory():
            entropy = np.random.default_rng()  # lint: disable=RK102 -- deliberately unseeded: this test exists to prove the sanitizer catches exactly this bug
            starts = entropy.integers(0, graph.num_vertices, size=25)
            config = WalkConfig(
                num_walkers=25, max_steps=8, seed=5,
                start_vertices=starts.astype(np.int64),
            )
            return WalkEngine(graph, UniformWalk(), config)

        report = run_sanitized(nondeterministic_factory)
        assert not report.deterministic
        assert report.divergence is not None
        assert report.divergence.index >= 0
        summary = report.summary()
        assert "NON-DETERMINISTIC" in summary
        assert "first divergence at event" in summary
        # The diverging event is described in kind:label terms.
        assert report.divergence.event_a.split(":")[0] in {
            "rng", "walker", "message"
        }

    def test_seeded_runs_match_unsanitized_result(self, graph):
        # Tracing must observe, not perturb: the traced engine's walk
        # matches an untraced engine under the same seed.
        config = WalkConfig(
            num_walkers=10, max_steps=6, seed=9, record_paths=True
        )
        plain = WalkEngine(graph, UniformWalk(), config).run()

        traced_engine = WalkEngine(graph, UniformWalk(), config)
        traced_engine.attach_tracer(DeterminismTracer())
        traced = traced_engine.run()

        for left, right in zip(plain.paths, traced.paths):
            np.testing.assert_array_equal(left, right)
