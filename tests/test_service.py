"""Tests for the overload-robust serving layer (repro.service)."""

import threading
import time

import numpy as np
import pytest

from repro.algorithms import DeepWalk, UniformWalk
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.stats import ServiceMetrics
from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    OverloadError,
    ServiceError,
)
from repro.graph.generators import uniform_degree_graph
from repro.service import (
    DEADLINE_EXCEEDED,
    OK,
    SHED,
    AdmissionQueue,
    CancelToken,
    CircuitBreaker,
    Deadline,
    DegradationPolicy,
    RetryBudget,
    WalkRequest,
    WalkService,
    apply_degradation,
)


@pytest.fixture
def graph():
    return uniform_degree_graph(120, 4, seed=0, undirected=True)


class FakeClock:
    """Monotonic stub advancing a fixed step per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        current = self.now
        self.now += self.step
        return current


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock(step=0.0)
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        clock.now = 6.0
        assert deadline.expired()
        assert deadline.remaining() < 0

    def test_at_constructor(self):
        clock = FakeClock(step=0.0)
        deadline = Deadline.at(3.0, clock=clock)
        clock.now = 2.9
        assert not deadline.expired()
        clock.now = 3.0
        assert deadline.expired()

    def test_pickle_roundtrip(self):
        import pickle

        deadline = Deadline(60.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expires_at == deadline.expires_at
        assert not clone.expired()

    def test_fake_clock_not_picklable(self):
        import pickle

        with pytest.raises(ValueError):
            pickle.dumps(Deadline(1.0, clock=FakeClock()))

    def test_cancel_token(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.cancel()  # idempotent
        assert token.cancelled


class TestEngineDeadline:
    def test_expired_deadline_yields_wellformed_empty_partial(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=5, record_paths=True)
        clock = FakeClock(step=0.0)
        clock.now = 100.0
        result = WalkEngine(graph, UniformWalk(), config).run(
            deadline=Deadline.at(1.0, clock=clock)
        )
        assert result.status == "deadline_exceeded"
        assert not result.complete
        assert result.stats.iterations == 0
        assert result.walk_lengths.size == 10
        assert all(len(path) == 1 for path in result.paths)

    def test_mid_run_deadline_stops_at_batch_boundary(self, graph):
        # The engine reads the clock once per iteration check, so a
        # 2.5-tick deadline on a 1-tick clock stops after iteration 2.
        config = WalkConfig(num_walkers=10, max_steps=50)
        clock = FakeClock(step=1.0)
        deadline = Deadline(2.5, clock=clock)  # clock now at 1.0
        result = WalkEngine(graph, UniformWalk(), config).run(deadline=deadline)
        assert result.status == "deadline_exceeded"
        assert result.stats.iterations == 2
        assert np.all(result.walkers.steps == 2)

    def test_cancel_token_stops_run(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=5)
        token = CancelToken()
        token.cancel()
        result = WalkEngine(graph, UniformWalk(), config).run(cancel=token)
        assert result.status == "cancelled"
        assert result.stats.iterations == 0

    def test_no_deadline_is_bit_identical_to_default_run(self, graph):
        config = WalkConfig(num_walkers=20, max_steps=10, record_paths=True, seed=5)
        plain = WalkEngine(graph, DeepWalk(), config).run()
        clock = FakeClock(step=0.0)
        bounded = WalkEngine(graph, DeepWalk(), config).run(
            deadline=Deadline(1e9, clock=clock)
        )
        assert bounded.status == "complete"
        assert all(
            np.array_equal(a, b) for a, b in zip(plain.paths, bounded.paths)
        )

    def test_max_iterations_reports_paused(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=20)
        result = WalkEngine(graph, UniformWalk(), config).run(max_iterations=3)
        assert result.status == "paused"
        assert result.walkers.num_active == 10

    def test_distributed_engine_honours_deadline(self, graph):
        config = WalkConfig(num_walkers=16, max_steps=30)
        clock = FakeClock(step=1.0)
        engine = DistributedWalkEngine(graph, UniformWalk(), config, num_nodes=4)
        result = engine.run(deadline=Deadline(3.5, clock=clock))
        assert result.status == "deadline_exceeded"
        assert 0 < result.cluster.num_supersteps < 30
        # Partial stops at a superstep barrier: counters stay coherent.
        assert result.stats.total_steps == result.walkers.steps.sum()


class TestAdmissionQueue:
    def test_reject_newest_rejects_incoming(self):
        queue = AdmissionQueue(2, "reject-newest")
        assert queue.offer("a") == (True, [])
        assert queue.offer("b") == (True, [])
        assert queue.offer("c") == (False, [])
        assert queue.take() == "a"

    def test_reject_oldest_evicts_head(self):
        queue = AdmissionQueue(2, "reject-oldest")
        queue.offer("a")
        queue.offer("b")
        admitted, evicted = queue.offer("c")
        assert admitted and evicted == ["a"]
        assert queue.take() == "b"
        assert queue.take() == "c"

    def test_priority_evicts_strictly_lower(self):
        queue = AdmissionQueue(2, "priority")
        queue.offer("low1", priority=0)
        queue.offer("low2", priority=0)
        admitted, evicted = queue.offer("high", priority=5)
        assert admitted and evicted == ["low2"]  # newest among ties
        # Equal priority does not evict.
        assert queue.offer("high2", priority=0) == (False, [])

    def test_priority_dequeue_order(self):
        queue = AdmissionQueue(4, "priority")
        queue.offer("a", priority=0)
        queue.offer("b", priority=2)
        queue.offer("c", priority=2)
        queue.offer("d", priority=1)
        assert [queue.take() for _ in range(4)] == ["b", "c", "d", "a"]

    def test_close_refuses_offers_and_unblocks(self):
        queue = AdmissionQueue(2)
        queue.close()
        assert queue.offer("x") == (False, [])
        assert queue.take(timeout=0.01) is None

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(0)
        with pytest.raises(ConfigError):
            AdmissionQueue(4, "drop-everything")

    def test_fullness(self):
        queue = AdmissionQueue(4)
        queue.offer("a")
        assert queue.fullness() == pytest.approx(0.25)


class TestDegradation:
    def test_no_pressure_no_change(self, graph):
        config = WalkConfig(num_walkers=100, max_steps=80, record_paths=True)
        degraded, applied = apply_degradation(
            config, graph, 0.1, DegradationPolicy()
        )
        assert degraded is config
        assert applied == ()

    def test_ladder_is_cumulative(self, graph):
        config = WalkConfig(num_walkers=100, max_steps=80, record_paths=True)
        policy = DegradationPolicy()

        level1, applied1 = apply_degradation(config, graph, 0.6, policy)
        assert applied1 == ("drop_record_paths",)
        assert not level1.record_paths and level1.max_steps == 80

        level2, applied2 = apply_degradation(config, graph, 0.8, policy)
        assert applied2 == ("drop_record_paths", "cap_max_steps:20")
        assert level2.max_steps == 20

        level3, applied3 = apply_degradation(config, graph, 1.0, policy)
        assert applied3 == (
            "drop_record_paths",
            "cap_max_steps:20",
            "shrink_walkers:25",
        )
        assert level3.num_walkers == 25

    def test_rungs_skip_noop_changes(self, graph):
        # Paths not recorded, steps already short: only labels for
        # actual downgrades appear.
        config = WalkConfig(num_walkers=100, max_steps=10)
        degraded, applied = apply_degradation(
            config, graph, 0.8, DegradationPolicy()
        )
        assert degraded is config
        assert applied == ()

    def test_shrink_respects_explicit_starts(self, graph):
        starts = np.arange(40, dtype=np.int64) % graph.num_vertices
        config = WalkConfig(num_walkers=40, max_steps=5, start_vertices=starts)
        degraded, applied = apply_degradation(
            config, graph, 1.0, DegradationPolicy()
        )
        assert degraded.num_walkers == 10
        assert degraded.start_vertices.size == 10
        # The degraded config still validates and runs.
        result = WalkEngine(graph, UniformWalk(), degraded).run()
        assert result.walk_lengths.size == 10

    def test_invalid_policy(self):
        with pytest.raises(ConfigError):
            DegradationPolicy(drop_paths_at=0.9, cap_steps_at=0.5)
        with pytest.raises(ConfigError):
            DegradationPolicy(walker_fraction=0.0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        clock = FakeClock(step=0.0)
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now = 11.0
        assert breaker.allow()  # half-open probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock(step=0.0)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 10.0  # timer restarted at 6.0, not expired yet
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_limits_concurrent_probes(self):
        clock = FakeClock(step=0.0)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_probes=1,
            clock=clock,
        )
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        assert not breaker.allow()  # second probe refused


class TestRetryBudget:
    def test_drains_and_refills(self):
        budget = RetryBudget(capacity=2.0, deposit_ratio=0.5, initial=2.0)
        assert budget.try_acquire()
        assert budget.try_acquire()
        assert not budget.try_acquire()
        assert budget.denied == 1
        for _ in range(2):
            budget.record_success()
        assert budget.try_acquire()

    def test_capacity_cap(self):
        budget = RetryBudget(capacity=1.0, deposit_ratio=1.0)
        for _ in range(5):
            budget.record_success()
        assert budget.tokens == 1.0


class TestServiceMetrics:
    def test_percentiles(self):
        metrics = ServiceMetrics()
        for value in [0.01, 0.02, 0.03, 0.04]:
            metrics.record_latency(value)
        assert metrics.p50_latency == pytest.approx(0.025)
        assert metrics.p99_latency <= 0.04
        assert ServiceMetrics().p99_latency == 0.0

    def test_accounting(self):
        metrics = ServiceMetrics()
        metrics.submitted = 5
        metrics.served = 2
        metrics.record_shed("queue_full")
        metrics.failed = 1
        assert not metrics.accounting_balanced()
        assert metrics.accounting_balanced(pending=1)
        assert "queue_full=1" in metrics.report()

    def _shard(self, served=1, shed_reason=None, latency=None):
        shard = ServiceMetrics()
        shard.submitted = served + (1 if shed_reason else 0)
        shard.admitted = served
        shard.served = served
        if shed_reason:
            shard.record_shed(shed_reason)
        if latency is not None:
            shard.record_latency(latency)
        return shard

    def test_merge_accumulates_and_preserves_conservation(self):
        aggregate = ServiceMetrics()
        a = self._shard(served=3, shed_reason="queue_full", latency=0.01)
        b = self._shard(served=2, latency=0.04)
        assert aggregate.merge(a) is True
        assert aggregate.merge(b) is True
        assert aggregate.submitted == a.submitted + b.submitted
        assert aggregate.served == 5
        assert aggregate.shed == 1
        assert aggregate.shed_reasons == {"queue_full": 1}
        assert aggregate.latencies_seconds == [0.01, 0.04]
        assert (
            aggregate.served + aggregate.shed + aggregate.failed
            == aggregate.submitted
        )

    def test_merge_is_idempotent_per_source(self):
        aggregate = ServiceMetrics()
        shard = self._shard(served=4, shed_reason="deadline")
        assert aggregate.merge(shard) is True
        # Re-delivered delta (e.g. a supervised-pool restart resending
        # the same shard result) must not double-count.
        assert aggregate.merge(shard) is False
        assert aggregate.submitted == shard.submitted
        assert aggregate.shed_reasons == {"deadline": 1}
        # Self-merge and relayed duplicates are also refused: a fresh
        # relay that re-packages the already-counted shard is rejected
        # whole because its absorbed set overlaps the aggregate's.
        assert aggregate.merge(aggregate) is False
        relay = ServiceMetrics()
        assert relay.merge(shard) is True
        assert aggregate.merge(relay) is False
        assert aggregate.submitted == shard.submitted

    def test_merge_transitive_dedup_via_merged_sources(self):
        shard = self._shard(served=2)
        left, right = ServiceMetrics(), ServiceMetrics()
        assert left.merge(shard) and right.merge(shard)
        root = ServiceMetrics()
        assert root.merge(left) is True
        # right re-packages the shard root already counted via left;
        # the overlap in merged_sources refuses it whole.
        assert root.merge(right) is False
        assert root.served == 2
        assert shard.source_id in root.merged_sources

    def test_merge_concurrent_shards_exact(self):
        import threading

        aggregate = ServiceMetrics()
        shards = [self._shard(served=1, latency=0.01) for _ in range(16)]
        # Each shard delivered twice, concurrently: exactly one of the
        # two deliveries may win.
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda s=s: outcomes.append(aggregate.merge(s))
            )
            for s in shards
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count(True) == len(shards)
        assert aggregate.served == len(shards)
        assert len(aggregate.latencies_seconds) == len(shards)
        assert (
            aggregate.served + aggregate.shed + aggregate.failed
            == aggregate.submitted
        )


class TestWalkService:
    def test_deadline_free_request_bit_identical(self, graph):
        config = WalkConfig(
            num_walkers=30, max_steps=12, record_paths=True, seed=11
        )
        direct = WalkEngine(graph, DeepWalk(), config).run()
        with WalkService(graph, num_workers=2, queue_capacity=8) as service:
            response = service.submit(
                WalkRequest(program=DeepWalk(), config=config)
            ).wait(timeout=60.0)
        assert response.status == OK
        assert response.degradations == ()
        assert len(response.result.paths) == len(direct.paths)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(direct.paths, response.result.paths)
        )

    def test_deadline_exceeded_carries_partial(self, graph):
        config = WalkConfig(num_walkers=10, max_steps=10, record_paths=True)
        with WalkService(graph, num_workers=1, queue_capacity=4) as service:
            response = service.submit(
                WalkRequest(program=UniformWalk(), config=config, deadline=0.0)
            ).wait(timeout=60.0)
        assert response.status == DEADLINE_EXCEEDED
        assert response.result is not None
        assert response.result.status == "deadline_exceeded"
        assert response.result.walk_lengths.size == 10
        assert all(len(p) >= 1 for p in response.result.paths)

    def test_poison_request_fails_cleanly(self, graph):
        class Poison(UniformWalk):
            def setup_walkers(self, g, walkers, rng):
                raise RuntimeError("poison brew")

        with WalkService(graph, num_workers=1, queue_capacity=4) as service:
            ticket = service.submit(WalkRequest(program=Poison()))
            response = ticket.wait(timeout=60.0)
            assert response.status == "failed"
            assert "poison brew" in response.error
            with pytest.raises(ServiceError, match="poison brew"):
                ticket.raise_for_status()
        assert service.metrics.failed == 1
        assert service.accounting_balanced()

    def test_queue_full_sheds_newest(self, graph):
        blocker = threading.Event()

        class Blocking(UniformWalk):
            def setup_walkers(self, g, walkers, rng):
                blocker.wait(timeout=30.0)

        service = WalkService(
            graph, num_workers=1, queue_capacity=2, shed_policy="reject-newest"
        )
        slow_cfg = WalkConfig(num_walkers=2, max_steps=1)
        first = service.submit(WalkRequest(program=Blocking(), config=slow_cfg))
        deadline = time.monotonic() + 10.0
        while service.queue_depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)  # wait for the worker to pick it up
        fillers = [
            service.submit(WalkRequest(program=UniformWalk())) for _ in range(2)
        ]
        overflow = service.submit(WalkRequest(program=UniformWalk()))
        shed_response = overflow.wait(timeout=5.0)
        assert shed_response.status == SHED
        assert shed_response.shed_reason == "queue_full"
        with pytest.raises(OverloadError):
            overflow.raise_for_status()
        blocker.set()
        service.close(wait=True)
        assert first.wait(1.0).status == OK
        assert all(f.wait(1.0).status == OK for f in fillers)
        assert service.metrics.shed == 1
        assert service.accounting_balanced()

    def test_priority_policy_evicts_low_priority(self, graph):
        blocker = threading.Event()

        class Blocking(UniformWalk):
            def setup_walkers(self, g, walkers, rng):
                blocker.wait(timeout=30.0)

        service = WalkService(
            graph, num_workers=1, queue_capacity=1, shed_policy="priority"
        )
        running = service.submit(
            WalkRequest(program=Blocking(), config=WalkConfig(num_walkers=2))
        )
        deadline = time.monotonic() + 10.0
        while service.queue_depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        low = service.submit(WalkRequest(program=UniformWalk(), priority=0))
        high = service.submit(WalkRequest(program=UniformWalk(), priority=9))
        shed = low.wait(timeout=5.0)
        assert shed.status == SHED
        assert shed.shed_reason == "evicted:priority"
        blocker.set()
        service.close(wait=True)
        assert running.wait(1.0).status == OK
        assert high.wait(1.0).status == OK
        assert service.accounting_balanced()

    def test_degradation_recorded_on_response(self, graph):
        blocker = threading.Event()

        class Blocking(UniformWalk):
            def setup_walkers(self, g, walkers, rng):
                blocker.wait(timeout=30.0)

        service = WalkService(
            graph,
            num_workers=1,
            queue_capacity=4,
            shed_policy="reject-newest",
            degradation=DegradationPolicy(
                drop_paths_at=0.5, cap_steps_at=0.5, shrink_walkers_at=0.5,
                max_steps_cap=3,
            ),
        )
        first = service.submit(
            WalkRequest(program=Blocking(), config=WalkConfig(num_walkers=2))
        )
        deadline = time.monotonic() + 10.0
        while service.queue_depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        # Fill the queue to 100% so the next executions see pressure.
        config = WalkConfig(num_walkers=40, max_steps=80, record_paths=True)
        queued = [
            service.submit(WalkRequest(program=UniformWalk(), config=config))
            for _ in range(4)
        ]
        blocker.set()
        service.close(wait=True)
        assert first.wait(1.0).status == OK
        responses = [t.wait(1.0) for t in queued]
        degraded = [r for r in responses if r.degradations]
        assert degraded, "pressure at dequeue should have degraded requests"
        worst = degraded[0]
        assert "drop_record_paths" in worst.degradations
        assert "cap_max_steps:3" in worst.degradations
        assert worst.result.paths is None
        assert worst.result.walkers.steps.max() <= 3
        assert service.metrics.degraded == len(degraded)

    def test_circuit_breaker_sheds_after_failures(self, graph):
        class Poison(UniformWalk):
            def setup_walkers(self, g, walkers, rng):
                raise RuntimeError("boom")

        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        service = WalkService(
            graph, num_workers=1, queue_capacity=8, breaker=breaker
        )
        poisons = [
            service.submit(WalkRequest(program=Poison())) for _ in range(2)
        ]
        for ticket in poisons:
            assert ticket.wait(timeout=60.0).status == "failed"
        late = service.submit(WalkRequest(program=UniformWalk()))
        response = late.wait(timeout=60.0)
        service.close(wait=True)
        assert response.status == SHED
        assert response.shed_reason == "circuit_open"
        assert service.metrics.shed_reasons["circuit_open"] == 1
        assert service.accounting_balanced()

    def test_cancelled_queued_request_sheds(self, graph):
        blocker = threading.Event()

        class Blocking(UniformWalk):
            def setup_walkers(self, g, walkers, rng):
                blocker.wait(timeout=30.0)

        service = WalkService(graph, num_workers=1, queue_capacity=4)
        first = service.submit(
            WalkRequest(program=Blocking(), config=WalkConfig(num_walkers=2))
        )
        deadline = time.monotonic() + 10.0
        while service.queue_depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = service.submit(WalkRequest(program=UniformWalk()))
        queued.cancel()
        blocker.set()
        service.close(wait=True)
        assert first.wait(1.0).status == OK
        assert queued.wait(1.0).shed_reason == "cancelled"
        assert service.accounting_balanced()

    def test_submit_after_close_sheds_with_shutdown_reason(self, graph):
        service = WalkService(graph, num_workers=1, queue_capacity=2)
        service.close(wait=True)
        response = service.submit(WalkRequest(program=UniformWalk())).wait(1.0)
        assert response.status == SHED
        assert response.shed_reason == "shutdown"
        assert service.accounting_balanced()

    def test_deadline_exceeded_raise_for_status(self, graph):
        with WalkService(graph, num_workers=1, queue_capacity=2) as service:
            ticket = service.submit(
                WalkRequest(program=UniformWalk(), deadline=0.0)
            )
            with pytest.raises(DeadlineExceededError):
                ticket.raise_for_status(timeout=60.0)

    def test_sharded_request_through_service(self, graph):
        config = WalkConfig(num_walkers=24, max_steps=5)
        with WalkService(graph, num_workers=1, queue_capacity=2) as service:
            response = service.submit(
                WalkRequest(program=UniformWalk(), config=config, num_shards=3)
            ).wait(timeout=120.0)
        assert response.status == OK
        assert response.result.stats.total_steps == 24 * 5
        assert response.result.num_workers == 3
