"""Soak tests: sustained mixed traffic with exact accounting.

The acceptance criteria pinned here:

* a stream of >= 200 mixed requests (slow walks, poison programs that
  raise, deadline-tight requests) completes with no hang and the exact
  conservation law ``submitted == served + shed + failed``;
* every deadline-exceeded response carries a well-formed partial
  result;
* a run whose worker process is killed mid-flight finishes with
  :class:`~repro.errors.WorkerError` naming the shard, not a hang or a
  timeout.
"""

import os
import time

import numpy as np
import pytest

from repro.algorithms import DeepWalk, UniformWalk
from repro.core.config import WalkConfig
from repro.core.stats import ServiceMetrics
from repro.errors import WorkerError
from repro.graph.generators import uniform_degree_graph
from repro.parallel import run_parallel_walk
from repro.service import (
    DEADLINE_EXCEEDED,
    FAILED,
    OK,
    SHED,
    CircuitBreaker,
    WalkRequest,
    WalkService,
)


class PoisonWalk(UniformWalk):
    """Raises during setup — models a malformed request."""

    def setup_walkers(self, graph, walkers, rng):
        raise RuntimeError("poison request")


class ExitingWalk(UniformWalk):
    """Kills its worker process outright — models an OOM kill."""

    def setup_walkers(self, graph, walkers, rng):
        os._exit(17)


def _mixed_request(index: int) -> WalkRequest:
    """Deterministic traffic mix keyed on the request index."""
    bucket = index % 10
    seed = 7919 * index + 13
    if bucket < 5:  # light
        return WalkRequest(
            program=UniformWalk(),
            config=WalkConfig(num_walkers=16, max_steps=8, seed=seed),
            tag="light",
        )
    if bucket < 7:  # slow
        return WalkRequest(
            program=DeepWalk(),
            config=WalkConfig(
                num_walkers=128, max_steps=40, record_paths=True, seed=seed
            ),
            priority=1,
            tag="slow",
        )
    if bucket < 9:  # deadline-tight
        return WalkRequest(
            program=UniformWalk(),
            config=WalkConfig(
                num_walkers=32, max_steps=30, record_paths=True, seed=seed
            ),
            deadline=0.0,
            tag="tight",
        )
    return WalkRequest(program=PoisonWalk(), tag="poison")  # poison


@pytest.mark.slow
def test_soak_mixed_stream_exact_accounting():
    graph = uniform_degree_graph(300, 6, seed=1, undirected=True)
    total = 200
    # A breaker that never opens during the soak: poison requests land
    # at unpredictable times relative to successes, and this test pins
    # accounting, not breaker behaviour (test_service.py covers that).
    service = WalkService(
        graph,
        num_workers=4,
        queue_capacity=16,
        shed_policy="reject-oldest",
        breaker=CircuitBreaker(failure_threshold=10_000),
    )
    tickets = [service.submit(_mixed_request(i)) for i in range(total)]
    service.close(wait=True)
    responses = [t.wait(timeout=300.0) for t in tickets]

    by_status = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1

    metrics = service.metrics
    assert metrics.submitted == total
    # The conservation law, exactly — from both views.
    assert metrics.served + metrics.shed + metrics.failed == total
    assert service.accounting_balanced()

    # Route the same accounting through the idempotent merge path: a
    # fresh aggregate absorbs the service's metrics once, refuses the
    # duplicate delivery, and the conservation law holds on the merged
    # copy exactly as on the original.
    aggregate = ServiceMetrics()
    assert aggregate.merge(metrics) is True
    assert aggregate.merge(metrics) is False  # re-delivery is a no-op
    assert aggregate.submitted == total
    assert aggregate.served + aggregate.shed + aggregate.failed == total
    assert aggregate.served == metrics.served
    assert aggregate.shed == metrics.shed
    assert aggregate.failed == metrics.failed
    assert sum(aggregate.shed_reasons.values()) == aggregate.shed
    assert (
        by_status.get(OK, 0)
        + by_status.get(DEADLINE_EXCEEDED, 0)
        + by_status.get(SHED, 0)
        + by_status.get(FAILED, 0)
        == total
    )
    assert by_status.get(OK, 0) + by_status.get(DEADLINE_EXCEEDED, 0) == (
        metrics.served
    )
    assert by_status.get(SHED, 0) == metrics.shed
    assert by_status.get(FAILED, 0) == metrics.failed

    # Every executed poison request failed with its message preserved.
    for response in responses:
        if response.tag == "poison" and response.status == FAILED:
            assert "poison request" in response.error

    # Deadline-tight requests that got executed carry well-formed
    # partials: correct walker count, real path arrays, tagged status.
    deadline_responses = [
        r for r in responses if r.status == DEADLINE_EXCEEDED
    ]
    assert metrics.deadline_hits == len(deadline_responses)
    assert deadline_responses, "expected some deadline-tight executions"
    for response in deadline_responses:
        result = response.result
        assert result is not None
        assert result.status == "deadline_exceeded"
        assert result.walk_lengths.size > 0
        if result.paths is not None:
            assert all(len(p) >= 1 for p in result.paths)
            assert all(
                isinstance(p, np.ndarray) and p.dtype == np.int64
                for p in result.paths
            )


@pytest.mark.slow
def test_killed_worker_raises_worker_error_not_hang():
    """Regression: a dead worker must surface immediately.

    The old ``multiprocessing.Pool.map`` path blocked forever when a
    worker died (the pool never completes the map).  The supervised
    pool detects the closed result pipe and raises
    :class:`~repro.errors.WorkerError` naming the shard.
    """
    graph = uniform_degree_graph(100, 4, seed=2, undirected=True)
    config = WalkConfig(num_walkers=8, max_steps=4)
    started = time.monotonic()
    with pytest.raises(WorkerError) as info:
        run_parallel_walk(
            graph,
            ExitingWalk(),
            config,
            num_workers=2,
            max_restarts=0,
        )
    elapsed = time.monotonic() - started
    assert elapsed < 60.0, "dead worker detection must not hang"
    assert info.value.kind == "died"
    assert info.value.shard in (0, 1)
    assert "shard" in str(info.value)
    assert "exit" in str(info.value).lower()


@pytest.mark.slow
def test_killed_worker_inside_service_fails_request():
    graph = uniform_degree_graph(100, 4, seed=3, undirected=True)
    with WalkService(graph, num_workers=1, queue_capacity=4) as service:
        ticket = service.submit(
            WalkRequest(
                program=ExitingWalk(),
                config=WalkConfig(num_walkers=8, max_steps=4),
                num_shards=2,
            )
        )
        response = ticket.wait(timeout=300.0)
    assert response.status == FAILED
    assert "WorkerError" in response.error
    assert service.accounting_balanced()
