"""Tests for walk checkpoint/resume."""

import numpy as np
import pytest

from repro.algorithms import (
    MetaPathWalk,
    Node2Vec,
    PPR,
    UniformWalk,
    random_schemes,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.snapshot import restore_checkpoint, save_checkpoint
from repro.errors import ReproError
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types


@pytest.fixture
def graph():
    return uniform_degree_graph(150, 5, seed=0, undirected=True)


class TestPartialRun:
    def test_max_iterations_stops_early(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=20)
        engine = WalkEngine(graph, UniformWalk(), config)
        result = engine.run(max_iterations=5)
        assert result.stats.iterations == 5
        assert result.walkers.num_active == 30

    def test_run_can_be_called_again(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=10)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=3)
        result = engine.run()
        assert result.walkers.num_active == 0
        assert np.all(result.walk_lengths == 10)


class TestCheckpointResume:
    def test_resume_completes_walk(self, graph, tmp_path):
        config = WalkConfig(num_walkers=40, max_steps=15, record_paths=True)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=6)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)

        resumed = restore_checkpoint(graph, UniformWalk(), config, checkpoint)
        result = resumed.run()
        assert result.walkers.num_active == 0
        assert np.all(result.walk_lengths == 15)
        for path in result.paths:
            assert len(path) == 16
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_resume_is_bit_identical(self, graph, tmp_path):
        """Interrupted + resumed == uninterrupted, path for path."""
        config = WalkConfig(
            num_walkers=25, max_steps=12, record_paths=True, seed=7
        )
        uninterrupted = WalkEngine(graph, UniformWalk(), config).run()

        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=4)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, UniformWalk(), config, checkpoint
        ).run()

        for a, b in zip(uninterrupted.paths, resumed.paths):
            np.testing.assert_array_equal(a, b)
        assert (
            uninterrupted.stats.counters.trials
            == resumed.stats.counters.trials
        )

    def test_resume_second_order_program(self, graph, tmp_path):
        config = WalkConfig(num_walkers=30, max_steps=10, seed=2)
        program = Node2Vec(p=0.5, q=2.0, biased=False)
        engine = WalkEngine(graph, program, config)
        engine.run(max_iterations=5)
        checkpoint = tmp_path / "n2v.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, Node2Vec(p=0.5, q=2.0, biased=False), config, checkpoint
        )
        result = resumed.run()
        assert result.walkers.num_active == 0
        assert np.all(result.walk_lengths == 10)

    def test_custom_state_restored(self, tmp_path):
        graph = assign_random_edge_types(
            uniform_degree_graph(80, 4, seed=1, undirected=True), 3, seed=2
        )
        schemes = random_schemes(5, 3, 3, seed=3)
        config = WalkConfig(num_walkers=40, max_steps=9, seed=4)
        engine = WalkEngine(graph, MetaPathWalk(schemes), config)
        engine.run(max_iterations=3)
        assignments = engine.walkers.state("metapath_scheme").copy()
        checkpoint = tmp_path / "mp.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, MetaPathWalk(schemes), config, checkpoint
        )
        np.testing.assert_array_equal(
            resumed.walkers.state("metapath_scheme"), assignments
        )

    def test_termination_stats_carry_over(self, graph, tmp_path):
        config = WalkConfig(
            num_walkers=300, max_steps=None, termination_probability=0.3, seed=5
        )
        engine = WalkEngine(graph, PPR(), config)
        engine.run(max_iterations=4)
        dead_so_far = engine.stats.termination.by_probability
        assert dead_so_far > 0
        checkpoint = tmp_path / "ppr.npz"
        save_checkpoint(engine, checkpoint)
        result = restore_checkpoint(graph, PPR(), config, checkpoint).run()
        assert result.stats.termination.by_probability == 300


class TestValidation:
    def test_walker_count_mismatch(self, graph, tmp_path):
        config = WalkConfig(num_walkers=10, max_steps=5)
        engine = WalkEngine(graph, UniformWalk(), config)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)
        other = WalkConfig(num_walkers=11, max_steps=5)
        with pytest.raises(ReproError):
            restore_checkpoint(graph, UniformWalk(), other, checkpoint)

    def test_missing_recorder_payload(self, graph, tmp_path):
        config_plain = WalkConfig(num_walkers=10, max_steps=5)
        engine = WalkEngine(graph, UniformWalk(), config_plain)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)
        config_recording = WalkConfig(
            num_walkers=10, max_steps=5, record_paths=True
        )
        with pytest.raises(ReproError):
            restore_checkpoint(
                graph, UniformWalk(), config_recording, checkpoint
            )
