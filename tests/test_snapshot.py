"""Tests for walk checkpoint/resume."""

import numpy as np
import pytest

from repro.algorithms import (
    MetaPathWalk,
    Node2Vec,
    PPR,
    UniformWalk,
    random_schemes,
)
from repro.cluster import (
    DistributedWalkEngine,
    FaultPlan,
    MessageFaults,
    NodeCrash,
)
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.snapshot import restore_checkpoint, save_checkpoint
from repro.errors import ReproError, SnapshotError
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types


@pytest.fixture
def graph():
    return uniform_degree_graph(150, 5, seed=0, undirected=True)


class TestPartialRun:
    def test_max_iterations_stops_early(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=20)
        engine = WalkEngine(graph, UniformWalk(), config)
        result = engine.run(max_iterations=5)
        assert result.stats.iterations == 5
        assert result.walkers.num_active == 30

    def test_run_can_be_called_again(self, graph):
        config = WalkConfig(num_walkers=30, max_steps=10)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=3)
        result = engine.run()
        assert result.walkers.num_active == 0
        assert np.all(result.walk_lengths == 10)


class TestCheckpointResume:
    def test_resume_completes_walk(self, graph, tmp_path):
        config = WalkConfig(num_walkers=40, max_steps=15, record_paths=True)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=6)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)

        resumed = restore_checkpoint(graph, UniformWalk(), config, checkpoint)
        result = resumed.run()
        assert result.walkers.num_active == 0
        assert np.all(result.walk_lengths == 15)
        for path in result.paths:
            assert len(path) == 16
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_resume_is_bit_identical(self, graph, tmp_path):
        """Interrupted + resumed == uninterrupted, path for path."""
        config = WalkConfig(
            num_walkers=25, max_steps=12, record_paths=True, seed=7
        )
        uninterrupted = WalkEngine(graph, UniformWalk(), config).run()

        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=4)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, UniformWalk(), config, checkpoint
        ).run()

        for a, b in zip(uninterrupted.paths, resumed.paths):
            np.testing.assert_array_equal(a, b)
        assert (
            uninterrupted.stats.counters.trials
            == resumed.stats.counters.trials
        )

    def test_resume_second_order_program(self, graph, tmp_path):
        config = WalkConfig(num_walkers=30, max_steps=10, seed=2)
        program = Node2Vec(p=0.5, q=2.0, biased=False)
        engine = WalkEngine(graph, program, config)
        engine.run(max_iterations=5)
        checkpoint = tmp_path / "n2v.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, Node2Vec(p=0.5, q=2.0, biased=False), config, checkpoint
        )
        result = resumed.run()
        assert result.walkers.num_active == 0
        assert np.all(result.walk_lengths == 10)

    def test_custom_state_restored(self, tmp_path):
        graph = assign_random_edge_types(
            uniform_degree_graph(80, 4, seed=1, undirected=True), 3, seed=2
        )
        schemes = random_schemes(5, 3, 3, seed=3)
        config = WalkConfig(num_walkers=40, max_steps=9, seed=4)
        engine = WalkEngine(graph, MetaPathWalk(schemes), config)
        engine.run(max_iterations=3)
        assignments = engine.walkers.state("metapath_scheme").copy()
        checkpoint = tmp_path / "mp.npz"
        save_checkpoint(engine, checkpoint)
        resumed = restore_checkpoint(
            graph, MetaPathWalk(schemes), config, checkpoint
        )
        np.testing.assert_array_equal(
            resumed.walkers.state("metapath_scheme"), assignments
        )

    def test_termination_stats_carry_over(self, graph, tmp_path):
        config = WalkConfig(
            num_walkers=300, max_steps=None, termination_probability=0.3, seed=5
        )
        engine = WalkEngine(graph, PPR(), config)
        engine.run(max_iterations=4)
        dead_so_far = engine.stats.termination.by_probability
        assert dead_so_far > 0
        checkpoint = tmp_path / "ppr.npz"
        save_checkpoint(engine, checkpoint)
        result = restore_checkpoint(graph, PPR(), config, checkpoint).run()
        assert result.stats.termination.by_probability == 300


class TestValidation:
    def test_walker_count_mismatch(self, graph, tmp_path):
        config = WalkConfig(num_walkers=10, max_steps=5)
        engine = WalkEngine(graph, UniformWalk(), config)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)
        other = WalkConfig(num_walkers=11, max_steps=5)
        with pytest.raises(ReproError):
            restore_checkpoint(graph, UniformWalk(), other, checkpoint)

    def test_missing_recorder_payload(self, graph, tmp_path):
        config_plain = WalkConfig(num_walkers=10, max_steps=5)
        engine = WalkEngine(graph, UniformWalk(), config_plain)
        checkpoint = tmp_path / "walk.npz"
        save_checkpoint(engine, checkpoint)
        config_recording = WalkConfig(
            num_walkers=10, max_steps=5, record_paths=True
        )
        with pytest.raises(ReproError):
            restore_checkpoint(
                graph, UniformWalk(), config_recording, checkpoint
            )


class TestCorruptFiles:
    """Damaged checkpoints fail with SnapshotError, never a raw
    numpy/zipfile traceback."""

    @pytest.fixture
    def checkpoint(self, graph, tmp_path):
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=3)
        path = tmp_path / "walk.npz"
        save_checkpoint(engine, path)
        return path

    def test_truncated_file(self, graph, checkpoint):
        raw = checkpoint.read_bytes()
        checkpoint.write_bytes(raw[: len(raw) // 3])
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        with pytest.raises(SnapshotError, match="unreadable|malformed"):
            restore_checkpoint(graph, UniformWalk(), config, checkpoint)

    def test_flipped_bytes_fail_checksum(self, graph, checkpoint):
        raw = bytearray(checkpoint.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        checkpoint.write_bytes(bytes(raw))
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        with pytest.raises(SnapshotError):
            restore_checkpoint(graph, UniformWalk(), config, checkpoint)

    def test_not_a_checkpoint(self, graph, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"definitely not a zip archive")
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        with pytest.raises(SnapshotError):
            restore_checkpoint(graph, UniformWalk(), config, bogus)

    def test_missing_file(self, graph, tmp_path):
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        with pytest.raises(SnapshotError):
            restore_checkpoint(
                graph, UniformWalk(), config, tmp_path / "absent.npz"
            )

    def test_version_skew(self, graph, checkpoint, tmp_path):
        with np.load(checkpoint) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["version"] = np.asarray([99])
        from repro.core.snapshot import _payload_checksum

        del arrays["checksum"]
        arrays["checksum"] = np.asarray(
            [_payload_checksum(arrays)], dtype=np.uint64
        )
        skewed = tmp_path / "skewed.npz"
        np.savez_compressed(skewed, **arrays)
        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        with pytest.raises(SnapshotError, match="version"):
            restore_checkpoint(graph, UniformWalk(), config, skewed)


class TestCorruptionIsTyped:
    """Damage is distinguishable from absence: torn or bit-flipped
    files raise :class:`SnapshotCorruptError` (a :class:`SnapshotError`
    subclass), so callers can catch corruption specifically."""

    def _flip_middle_byte(self, path):
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_checkpoint_bit_flip_raises_corrupt_error(self, graph, tmp_path):
        from repro.errors import SnapshotCorruptError

        config = WalkConfig(num_walkers=20, max_steps=10, seed=1)
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=3)
        path = tmp_path / "walk.npz"
        save_checkpoint(engine, path)
        self._flip_middle_byte(path)
        with pytest.raises(SnapshotCorruptError):
            restore_checkpoint(graph, UniformWalk(), config, path)

    def test_graph_file_bit_flip_raises_corrupt_error(self, graph, tmp_path):
        from repro.errors import SnapshotCorruptError
        from repro.graph.io import load_binary, save_binary

        path = tmp_path / "graph.npz"
        save_binary(graph, path)
        assert load_binary(path) == graph  # intact file round-trips
        self._flip_middle_byte(path)
        with pytest.raises(SnapshotCorruptError):
            load_binary(path)

    def test_graph_file_truncation_raises_corrupt_error(self, graph, tmp_path):
        from repro.errors import SnapshotCorruptError
        from repro.graph.io import load_binary, save_binary

        path = tmp_path / "graph.npz"
        save_binary(graph, path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(SnapshotCorruptError):
            load_binary(path)

    def test_missing_graph_file_is_not_corruption(self, tmp_path):
        from repro.errors import GraphFormatError, SnapshotCorruptError
        from repro.graph.io import load_binary

        with pytest.raises(GraphFormatError) as excinfo:
            load_binary(tmp_path / "absent.npz")
        assert not isinstance(excinfo.value, SnapshotCorruptError)


class TestDistributedCheckpoint:
    def test_round_trip_resumes_bit_identically(self, graph, tmp_path):
        config = WalkConfig(
            num_walkers=60, max_steps=16, record_paths=True, seed=3
        )
        plan = FaultPlan(
            seed=11,
            crashes=(NodeCrash(superstep=4, node=1),),
            default_faults=MessageFaults(drop=0.05, duplicate=0.03),
        )

        def make():
            return DistributedWalkEngine(
                graph,
                Node2Vec(p=0.5, q=2.0, biased=False),
                config,
                num_nodes=4,
                fault_plan=plan,
                checkpoint_every=5,
            )

        uninterrupted = make().run()
        engine = make()
        engine.run(max_iterations=7)
        path = tmp_path / "dist.npz"
        save_checkpoint(engine, path)
        resumed = restore_checkpoint(
            graph,
            Node2Vec(p=0.5, q=2.0, biased=False),
            config,
            path,
            fault_plan=plan,
            checkpoint_every=5,
        )
        result = resumed.run()
        for a, b in zip(uninterrupted.paths, result.paths):
            np.testing.assert_array_equal(a, b)
        # Cluster accounting carries across the restore.
        assert (
            result.cluster.num_supersteps
            == uninterrupted.cluster.num_supersteps
        )
        assert result.cluster.recovery.crashes == 1
        result.cluster.delivery.check_conservation()

    def test_node_count_mismatch(self, graph, tmp_path):
        config = WalkConfig(num_walkers=20, max_steps=8, seed=2)
        engine = DistributedWalkEngine(
            graph, UniformWalk(), config, num_nodes=4
        )
        engine.run(max_iterations=2)
        path = tmp_path / "dist.npz"
        save_checkpoint(engine, path)
        with pytest.raises(SnapshotError, match="4 nodes"):
            restore_checkpoint(
                graph, UniformWalk(), config, path, num_nodes=8
            )

    def test_local_checkpoint_rejects_engine_options(self, graph, tmp_path):
        config = WalkConfig(num_walkers=10, max_steps=5)
        engine = WalkEngine(graph, UniformWalk(), config)
        path = tmp_path / "walk.npz"
        save_checkpoint(engine, path)
        with pytest.raises(SnapshotError):
            restore_checkpoint(
                graph, UniformWalk(), config, path, degrade_on_crash=True
            )
