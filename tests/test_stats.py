"""Unit tests for execution statistics containers."""

import pytest

from repro.core.stats import TerminationBreakdown, WalkStats
from repro.sampling.rejection import SamplingCounters


class TestTerminationBreakdown:
    def test_total(self):
        breakdown = TerminationBreakdown(
            by_step_limit=3, by_probability=2, by_dead_end=1
        )
        assert breakdown.total == 6


class TestWalkStats:
    def test_per_step_metrics(self):
        stats = WalkStats()
        stats.total_steps = 100
        stats.counters = SamplingCounters(trials=150, pd_evaluations=80)
        stats.full_scan_evaluations = 20
        assert stats.pd_evaluations_per_step == pytest.approx(1.0)
        assert stats.trials_per_step == pytest.approx(1.5)

    def test_zero_steps_safe(self):
        stats = WalkStats()
        assert stats.pd_evaluations_per_step == 0.0
        assert stats.trials_per_step == 0.0

    def test_summary_contains_key_fields(self):
        stats = WalkStats()
        stats.total_steps = 10
        stats.iterations = 4
        text = stats.summary()
        assert "steps=10" in text
        assert "iterations=4" in text
        assert "pd_evals/step" in text
