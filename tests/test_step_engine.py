"""Step-centric engine equivalence and sampler auto-selection tests.

The step-centric executor (Gather -> Move -> Update staging in
``repro.core.stepper``) is required to be *bit-identical* to the
walker-at-a-time loop under the ``fixed`` sampler policy: same kernels,
same RNG stream, same move/kill batching.  These tests pin that
contract for every program family — static, second-order, and dynamic
step-paced — on both the local and the distributed engine, plus the
partial-result paths (pause/cancel), the unsorted-lane guard fix, and
the ``auto`` policy's weaker contract (same walk law, deterministic
run-to-run).
"""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, MetaPathWalk, Node2Vec
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine, ZERO_MASS_GUARD_TRIALS
from repro.errors import ConfigError
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types
from repro.lint.sanitizer import run_sanitized
from repro.service import CancelToken


def plain_graph():
    return uniform_degree_graph(150, 6, seed=1, undirected=True)


def typed_graph():
    return assign_random_edge_types(
        uniform_degree_graph(150, 6, seed=1, undirected=True), 4, seed=2
    )


# (program factory, graph factory) per family; fresh instances per
# engine so no hidden program state can leak between the two runs.
PROGRAMS = {
    "deepwalk": (DeepWalk, plain_graph),
    "node2vec": (lambda: Node2Vec(p=2.0, q=0.5, biased=False), plain_graph),
    "metapath": (lambda: MetaPathWalk([[0, 1, 2], [2, 3]]), typed_graph),
}


def run_mode(name, engine_mode, *, nodes=0, sampler_policy="fixed",
             seed=9, **run_kwargs):
    make_program, make_graph = PROGRAMS[name]
    graph = make_graph()
    config = WalkConfig(
        num_walkers=120,
        max_steps=12,
        record_paths=True,
        seed=seed,
        engine_mode=engine_mode,
        sampler_policy=sampler_policy,
    )
    if nodes > 0:
        engine = DistributedWalkEngine(
            graph, make_program(), config, num_nodes=nodes
        )
    else:
        engine = WalkEngine(graph, make_program(), config)
    return engine.run(**run_kwargs)


class TestLocalEquivalence:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_step_matches_walker_bit_identical(self, name):
        step = run_mode(name, "step")
        walker = run_mode(name, "walker")
        assert len(step.paths) == len(walker.paths)
        for a, b in zip(step.paths, walker.paths):
            np.testing.assert_array_equal(a, b)
        assert step.stats.total_steps == walker.stats.total_steps
        assert step.stats.counters.trials == walker.stats.counters.trials
        assert (
            step.stats.counters.pd_evaluations
            == walker.stats.counters.pd_evaluations
        )
        assert (
            step.stats.full_scan_evaluations
            == walker.stats.full_scan_evaluations
        )

    def test_modes_selected_as_configured(self):
        graph = plain_graph()
        step = WalkEngine(graph, DeepWalk(), WalkConfig(engine_mode="step"))
        walker = WalkEngine(graph, DeepWalk(), WalkConfig(engine_mode="walker"))
        assert step.engine_mode == "step" and step._stepper is not None
        assert walker.engine_mode == "walker" and walker._stepper is None


class TestDistributedEquivalence:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_step_matches_walker_including_messages(self, name):
        step = run_mode(name, "step", nodes=4)
        walker = run_mode(name, "walker", nodes=4)
        for a, b in zip(step.paths, walker.paths):
            np.testing.assert_array_equal(a, b)
        assert step.stats.total_steps == walker.stats.total_steps
        assert step.stats.messages_sent == walker.stats.messages_sent
        np.testing.assert_array_equal(
            step.cluster.trials_per_node, walker.cluster.trials_per_node
        )
        np.testing.assert_array_equal(
            step.cluster.pd_evaluations_per_node,
            walker.cluster.pd_evaluations_per_node,
        )


class TestPartialResults:
    @pytest.mark.parametrize("name", ["deepwalk", "node2vec"])
    def test_pause_yields_identical_partials(self, name):
        step = run_mode(name, "step", max_iterations=4)
        walker = run_mode(name, "walker", max_iterations=4)
        assert step.status == walker.status == "paused"
        for a, b in zip(step.paths, walker.paths):
            np.testing.assert_array_equal(a, b)
        assert step.stats.total_steps == walker.stats.total_steps

    def test_cancel_token_stops_step_engine(self):
        token = CancelToken()
        token.cancel()
        result = run_mode("deepwalk", "step", cancel=token)
        assert result.status == "cancelled"
        # Partial results stay well-formed: one recorded start vertex
        # per walker, zero steps executed.
        assert result.stats.total_steps == 0
        assert len(result.paths) == result.walkers.num_walkers


class TestGuardLanes:
    def test_commit_round_guards_unsorted_lanes(self):
        """`_commit_round` must guard by *lane*, not by sorted id.

        Lane 0 holds walker 1 (accepted) and lane 1 holds walker 0
        (rejected, streak at the threshold): only walker 0 may be
        guard-killed.
        """
        from repro.graph.builder import from_edges
        from tests.test_multi_trial import StuckAtZero as StuckProgram

        graph = from_edges(2, [(0, 1), (1, 0)])
        engine = WalkEngine(
            graph, StuckProgram(), WalkConfig(num_walkers=2, seed=3)
        )
        engine.walkers.current[:] = [0, 1]
        engine._rejection_streak[:] = ZERO_MASS_GUARD_TRIALS - 1
        walker_ids = np.array([1, 0], dtype=np.int64)
        accepted = np.array([True, False])
        edges = np.zeros(2, dtype=np.int64)
        edges[0] = graph.edge_range(1)[0]  # walker 1 takes edge 1->0
        moved = engine._commit_round(walker_ids, accepted, edges)
        assert moved.all()
        assert bool(engine.walkers.alive[1])
        assert not bool(engine.walkers.alive[0])
        assert engine.stats.termination.by_dead_end == 1

    def test_step_mode_guard_resolves_dead_end(self):
        from repro.graph.builder import from_edges
        from tests.test_multi_trial import StuckAtZero as StuckProgram

        graph = from_edges(2, [(0, 1), (1, 0)])
        engine = WalkEngine(
            graph, StuckProgram(),
            WalkConfig(num_walkers=1, max_steps=10, seed=5,
                       engine_mode="step"),
        )
        engine.walkers.current[:] = [0]
        result = engine.run()
        assert result.stats.termination.by_dead_end == 1


class TestAutoPolicy:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_deterministic_run_to_run(self, name):
        first = run_mode(name, "step", sampler_policy="auto")
        second = run_mode(name, "step", sampler_policy="auto")
        for a, b in zip(first.paths, second.paths):
            np.testing.assert_array_equal(a, b)
        assert (
            first.stats.sampler.chosen_by_class()
            == second.stats.sampler.chosen_by_class()
        )

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_walks_follow_stored_edges(self, name):
        _, make_graph = PROGRAMS[name]
        graph = make_graph()
        result = run_mode(name, "step", sampler_policy="auto")
        for path in result.paths:
            for source, target in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(source), int(target))

    def test_decisions_recorded_in_stats(self):
        result = run_mode("deepwalk", "step", sampler_policy="auto")
        sampler = result.stats.sampler
        assert sampler.policy == "auto"
        assert sampler.chosen_by_class()
        as_dict = sampler.as_dict()
        assert as_dict["policy"] == "auto"
        assert as_dict["chosen_by_class"]

    def test_distributed_auto_deterministic(self):
        first = run_mode("metapath", "step", nodes=4, sampler_policy="auto")
        second = run_mode("metapath", "step", nodes=4, sampler_policy="auto")
        for a, b in zip(first.paths, second.paths):
            np.testing.assert_array_equal(a, b)
        assert first.stats.messages_sent == second.stats.messages_sent


class TestConfigValidation:
    def test_auto_requires_step_mode(self):
        with pytest.raises(ConfigError):
            WalkConfig(engine_mode="walker", sampler_policy="auto")

    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(ConfigError):
            WalkConfig(engine_mode="vertex")

    def test_unknown_sampler_policy_rejected(self):
        with pytest.raises(ConfigError):
            WalkConfig(sampler_policy="greedy")


class TestCrossEngineSanitizer:
    def factories(self, nodes=0):
        def make(engine_mode):
            def factory():
                make_program, make_graph = PROGRAMS["node2vec"]
                config = WalkConfig(
                    num_walkers=40, max_steps=8, seed=13,
                    engine_mode=engine_mode,
                )
                if nodes > 0:
                    return DistributedWalkEngine(
                        make_graph(), make_program(), config, num_nodes=nodes
                    )
                return WalkEngine(make_graph(), make_program(), config)

            return factory

        return [make("step"), make("walker")]

    def test_step_and_walker_fold_to_same_hash(self):
        report = run_sanitized(self.factories())
        assert report.deterministic
        assert len(set(report.rolling_hashes)) == 1

    def test_distributed_streams_fold_too(self):
        report = run_sanitized(self.factories(nodes=3))
        assert report.deterministic
        assert len(set(report.rolling_hashes)) == 1

    def test_single_factory_sequence_rejected(self):
        with pytest.raises(ValueError):
            run_sanitized(self.factories()[:1])
