"""Tests for streaming path output (constant-memory corpora)."""

import numpy as np
import pytest

from repro.algorithms import PPR, UniformWalk
from repro.analysis import load_corpus
from repro.cluster import DistributedWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.snapshot import save_checkpoint
from repro.core.trace import StreamingPathRecorder
from repro.errors import ConfigError, ReproError
from repro.graph.generators import uniform_degree_graph


@pytest.fixture
def graph():
    return uniform_degree_graph(80, 5, seed=0, undirected=True)


class TestStreamingPathRecorder:
    def test_flush_and_close(self, tmp_path):
        target = tmp_path / "walks.txt"
        recorder = StreamingPathRecorder(target, np.array([7, 8]))
        recorder.record_moves(np.array([0, 1]), np.array([1, 2]))
        recorder.record_moves(np.array([0]), np.array([3]))
        recorder.flush_finished(np.array([0]))
        assert recorder.lines_written == 1
        recorder.close()  # flushes walker 1
        walks = load_corpus(target)
        assert [w.tolist() for w in walks] == [[7, 1, 3], [8, 2]]

    def test_double_close_safe(self, tmp_path):
        recorder = StreamingPathRecorder(tmp_path / "w.txt", np.array([1]))
        recorder.close()
        recorder.close()

    def test_context_manager(self, tmp_path):
        target = tmp_path / "w.txt"
        with StreamingPathRecorder(target, np.array([4])) as recorder:
            recorder.record_moves(np.array([0]), np.array([5]))
        assert load_corpus(target)[0].tolist() == [4, 5]


class TestEngineStreaming:
    def test_streamed_corpus_matches_recorded(self, graph, tmp_path):
        """Same seed: the streamed corpus contains exactly the same
        walks an in-memory run records (order-insensitive)."""
        target = tmp_path / "corpus.txt"
        streamed = WalkEngine(
            graph,
            UniformWalk(),
            WalkConfig(
                num_walkers=40, max_steps=10, stream_paths_to=str(target), seed=3
            ),
        ).run()
        assert streamed.paths is None
        recorded = WalkEngine(
            graph,
            UniformWalk(),
            WalkConfig(num_walkers=40, max_steps=10, record_paths=True, seed=3),
        ).run()
        streamed_walks = sorted(
            tuple(w.tolist()) for w in load_corpus(target)
        )
        recorded_walks = sorted(tuple(p.tolist()) for p in recorded.paths)
        assert streamed_walks == recorded_walks

    def test_geometric_termination_streams_incrementally(self, graph, tmp_path):
        target = tmp_path / "corpus.txt"
        config = WalkConfig(
            num_walkers=200,
            max_steps=None,
            termination_probability=0.3,
            stream_paths_to=str(target),
            seed=4,
        )
        result = WalkEngine(graph, PPR(), config).run()
        walks = load_corpus(target)
        assert len(walks) == 200
        lengths = np.array([len(w) - 1 for w in walks])
        assert int(lengths.sum()) == result.stats.total_steps

    def test_distributed_streaming(self, graph, tmp_path):
        target = tmp_path / "corpus.txt"
        config = WalkConfig(
            num_walkers=30, max_steps=6, stream_paths_to=str(target), seed=5
        )
        DistributedWalkEngine(
            graph, UniformWalk(), config, num_nodes=3
        ).run()
        walks = load_corpus(target)
        assert len(walks) == 30
        for walk in walks:
            for source, targetv in zip(walk[:-1], walk[1:]):
                assert graph.has_edge(int(source), int(targetv))

    def test_mutually_exclusive_with_record_paths(self, tmp_path):
        with pytest.raises(ConfigError):
            WalkConfig(
                record_paths=True, stream_paths_to=str(tmp_path / "x.txt")
            )

    def test_checkpoint_rejected_while_streaming(self, graph, tmp_path):
        config = WalkConfig(
            num_walkers=10,
            max_steps=10,
            stream_paths_to=str(tmp_path / "c.txt"),
        )
        engine = WalkEngine(graph, UniformWalk(), config)
        engine.run(max_iterations=2)
        with pytest.raises(ReproError):
            save_checkpoint(engine, tmp_path / "ckpt.npz")
