"""Unit tests for walk path recording."""

import numpy as np
import pytest

from repro.algorithms import DeepWalk, Node2Vec
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.trace import PathRecorder
from repro.graph.generators import uniform_degree_graph


class TestPathRecorder:
    def test_no_moves(self):
        recorder = PathRecorder(np.array([4, 7]))
        paths = recorder.paths()
        assert [p.tolist() for p in paths] == [[4], [7]]

    def test_single_walker_sequence(self):
        recorder = PathRecorder(np.array([0]))
        for vertex in (1, 2, 3):
            recorder.record_moves(np.array([0]), np.array([vertex]))
        assert recorder.paths()[0].tolist() == [0, 1, 2, 3]

    def test_interleaved_walkers(self):
        recorder = PathRecorder(np.array([0, 10]))
        recorder.record_moves(np.array([0, 1]), np.array([1, 11]))
        recorder.record_moves(np.array([1]), np.array([12]))  # only walker 1
        recorder.record_moves(np.array([0, 1]), np.array([2, 13]))
        paths = recorder.paths()
        assert paths[0].tolist() == [0, 1, 2]
        assert paths[1].tolist() == [10, 11, 12, 13]

    def test_empty_batches_ignored(self):
        recorder = PathRecorder(np.array([5]))
        recorder.record_moves(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert recorder.paths()[0].tolist() == [5]

    def test_as_corpus(self):
        recorder = PathRecorder(np.array([1, 2]))
        recorder.record_moves(np.array([0]), np.array([3]))
        assert recorder.as_corpus() == [[1, 3], [2]]

    def test_inputs_copied(self):
        """Mutating the caller's arrays must not corrupt recordings."""
        recorder = PathRecorder(np.array([0]))
        walker_ids = np.array([0])
        vertices = np.array([5])
        recorder.record_moves(walker_ids, vertices)
        vertices[0] = 99
        assert recorder.paths()[0].tolist() == [0, 5]


class TestEngineModePathEquivalence:
    """Recording must be mode-agnostic: under the fixed sampler policy
    the step-centric executor drives the same kernels at the same RNG
    granularity as the walker loop, so recorded paths are bit-identical
    between ``engine_mode="walker"`` and ``engine_mode="step"``."""

    @pytest.fixture(scope="class")
    def graph(self):
        return uniform_degree_graph(250, 6, seed=3, undirected=True)

    def _paths(self, graph, program, mode, **overrides):
        settings = dict(
            num_walkers=60,
            max_steps=15,
            seed=11,
            record_paths=True,
            engine_mode=mode,
            sampler_policy="fixed",
        )
        settings.update(overrides)
        config = WalkConfig(**settings)
        return WalkEngine(graph, program, config).run().paths

    @pytest.mark.parametrize(
        "program",
        [DeepWalk(), Node2Vec(p=2.0, q=0.5)],
        ids=["deepwalk", "node2vec"],
    )
    def test_step_and_walker_paths_bit_identical(self, graph, program):
        walker_paths = self._paths(graph, program, "walker")
        step_paths = self._paths(graph, program, "step")
        assert len(walker_paths) == len(step_paths) == 60
        for a, b in zip(walker_paths, step_paths):
            assert np.array_equal(a, b)
        # Paths are real walks, not stubs: starts plus >= 1 move each.
        assert all(len(p) >= 2 for p in step_paths)

    def test_step_mode_with_termination_probability(self, graph):
        # Early termination exercises the recorder's ragged-length
        # reconstruction (walkers finish at different iterations).
        walker_paths = self._paths(
            graph, DeepWalk(), "walker", termination_probability=0.15
        )
        step_paths = self._paths(
            graph, DeepWalk(), "step", termination_probability=0.15
        )
        lengths = {len(p) for p in step_paths}
        assert len(lengths) > 1, "expected ragged path lengths"
        for a, b in zip(walker_paths, step_paths):
            assert np.array_equal(a, b)

    def test_step_mode_streaming_recorder_matches_in_memory(
        self, graph, tmp_path
    ):
        corpus = tmp_path / "walks.txt"
        config = WalkConfig(
            num_walkers=40,
            max_steps=10,
            seed=19,
            engine_mode="step",
            sampler_policy="fixed",
            stream_paths_to=str(corpus),
        )
        WalkEngine(graph, DeepWalk(), config).run()
        streamed = sorted(
            tuple(int(v) for v in line.split())
            for line in corpus.read_text().splitlines()
        )
        recorded = sorted(
            tuple(p.tolist())
            for p in self._paths(graph, DeepWalk(), "step", num_walkers=40,
                                 max_steps=10, seed=19)
        )
        assert streamed == recorded
