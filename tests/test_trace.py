"""Unit tests for walk path recording."""

import numpy as np

from repro.core.trace import PathRecorder


class TestPathRecorder:
    def test_no_moves(self):
        recorder = PathRecorder(np.array([4, 7]))
        paths = recorder.paths()
        assert [p.tolist() for p in paths] == [[4], [7]]

    def test_single_walker_sequence(self):
        recorder = PathRecorder(np.array([0]))
        for vertex in (1, 2, 3):
            recorder.record_moves(np.array([0]), np.array([vertex]))
        assert recorder.paths()[0].tolist() == [0, 1, 2, 3]

    def test_interleaved_walkers(self):
        recorder = PathRecorder(np.array([0, 10]))
        recorder.record_moves(np.array([0, 1]), np.array([1, 11]))
        recorder.record_moves(np.array([1]), np.array([12]))  # only walker 1
        recorder.record_moves(np.array([0, 1]), np.array([2, 13]))
        paths = recorder.paths()
        assert paths[0].tolist() == [0, 1, 2]
        assert paths[1].tolist() == [10, 11, 12, 13]

    def test_empty_batches_ignored(self):
        recorder = PathRecorder(np.array([5]))
        recorder.record_moves(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert recorder.paths()[0].tolist() == [5]

    def test_as_corpus(self):
        recorder = PathRecorder(np.array([1, 2]))
        recorder.record_moves(np.array([0]), np.array([3]))
        assert recorder.as_corpus() == [[1, 3], [2]]

    def test_inputs_copied(self):
        """Mutating the caller's arrays must not corrupt recordings."""
        recorder = PathRecorder(np.array([0]))
        walker_ids = np.array([0])
        vertices = np.array([5])
        recorder.record_moves(walker_ids, vertices)
        vertices[0] = 99
        assert recorder.paths()[0].tolist() == [0, 5]
