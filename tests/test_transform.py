"""Tests for graph transformations."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.generators import ring_graph, uniform_degree_graph
from repro.graph.transform import (
    connected_components,
    induced_subgraph,
    largest_component_subgraph,
    reverse_graph,
)


class TestReverse:
    def test_directed_reversal(self):
        graph = from_edges(4, [(0, 1), (1, 2), (0, 3)])
        reversed_graph = reverse_graph(graph)
        assert reversed_graph.has_edge(1, 0)
        assert reversed_graph.has_edge(2, 1)
        assert reversed_graph.has_edge(3, 0)
        assert not reversed_graph.has_edge(0, 1)
        assert reversed_graph.num_edges == 3

    def test_weights_travel(self):
        graph = from_edges(3, [(0, 1, 5.0), (1, 2, 7.0)])
        reversed_graph = reverse_graph(graph)
        edge = reversed_graph.edge_index(1, 0)
        assert reversed_graph.weights[edge] == 5.0

    def test_double_reverse_identity(self):
        graph = uniform_degree_graph(40, 4, seed=0)
        assert reverse_graph(reverse_graph(graph)) == graph

    def test_undirected_self_reverse(self):
        graph = uniform_degree_graph(30, 3, seed=1, undirected=True)
        reversed_graph = reverse_graph(graph)
        assert reversed_graph.is_undirected
        assert reversed_graph == graph


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        graph = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        subgraph, mapping = induced_subgraph(graph, np.array([0, 1, 2]))
        assert mapping.tolist() == [0, 1, 2]
        assert subgraph.num_vertices == 3
        assert subgraph.has_edge(0, 1)
        assert subgraph.has_edge(1, 2)
        assert subgraph.num_edges == 2  # 2->3, 3->4, 4->0 dropped

    def test_relabelling(self):
        graph = from_edges(6, [(3, 5), (5, 3)])
        subgraph, mapping = induced_subgraph(graph, np.array([5, 3]))
        assert mapping.tolist() == [3, 5]  # sorted original ids
        assert subgraph.has_edge(0, 1) and subgraph.has_edge(1, 0)

    def test_weights_and_types_travel(self):
        graph = from_edges(4, [(0, 1, 2.5), (1, 2, 3.5)])
        subgraph, _ = induced_subgraph(graph, np.array([0, 1]))
        assert subgraph.weights.tolist() == [2.5]

    def test_errors(self):
        graph = ring_graph(4)
        with pytest.raises(GraphError):
            induced_subgraph(graph, np.array([], dtype=np.int64))
        with pytest.raises(GraphError):
            induced_subgraph(graph, np.array([9]))


class TestComponents:
    def test_two_components(self):
        graph = from_edges(6, [(0, 1), (1, 2), (3, 4)])
        labels = connected_components(graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_directed_weak_connectivity(self):
        # 0 -> 1 and 2 -> 1: weakly one component.
        graph = from_edges(3, [(0, 1), (2, 1)])
        labels = connected_components(graph)
        assert labels[0] == labels[1] == labels[2]

    def test_largest_component_extraction(self):
        graph = from_edges(
            10,
            [(0, 1), (1, 2), (2, 0)]  # triangle
            + [(4, 5)]  # pair
            + [(6, 7), (7, 8), (8, 9), (9, 6)],  # square
        )
        subgraph, mapping = largest_component_subgraph(graph)
        assert subgraph.num_vertices == 4
        assert sorted(mapping.tolist()) == [6, 7, 8, 9]

    def test_fully_connected_graph_unchanged(self):
        graph = uniform_degree_graph(50, 4, seed=2, undirected=True)
        subgraph, mapping = largest_component_subgraph(graph)
        if mapping.size == graph.num_vertices:  # usually connected
            assert subgraph.num_edges == graph.num_edges


class TestWalksOnTransformedGraphs:
    def test_walk_on_largest_component(self):
        """The canonical pipeline: restrict walks to the big component."""
        from repro.algorithms import UniformWalk
        from repro.core.config import WalkConfig
        from repro.core.engine import WalkEngine

        graph = from_edges(
            8, [(0, 1), (1, 0), (1, 2), (2, 1), (3, 4)]
        )
        subgraph, _mapping = largest_component_subgraph(graph)
        config = WalkConfig(num_walkers=10, max_steps=5, record_paths=True)
        result = WalkEngine(subgraph, UniformWalk(), config).run()
        assert result.stats.total_steps > 0
