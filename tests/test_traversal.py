"""Unit tests for BFS (the Figure 5 comparator)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edges
from repro.graph.generators import (
    erdos_renyi_graph,
    ring_graph,
    uniform_degree_graph,
)
from repro.graph.traversal import UNREACHED, bfs, largest_reachable_set


def to_networkx(graph):
    sources = np.repeat(np.arange(graph.num_vertices), graph.out_degrees())
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    nx_graph.add_edges_from(zip(sources.tolist(), graph.targets.tolist()))
    return nx_graph


class TestBFS:
    def test_matches_networkx_levels(self):
        graph = erdos_renyi_graph(300, 3.0, seed=5)
        result = bfs(graph, 0)
        oracle = nx.single_source_shortest_path_length(to_networkx(graph), 0)
        for vertex in range(graph.num_vertices):
            expected = oracle.get(vertex, UNREACHED)
            assert result.levels[vertex] == expected

    def test_frontier_sizes_sum_to_reached(self):
        graph = erdos_renyi_graph(300, 3.0, seed=6)
        result = bfs(graph, 0)
        assert sum(result.frontier_sizes) == result.num_reached

    def test_frontier_matches_level_histogram(self):
        graph = uniform_degree_graph(200, 4, seed=7, undirected=True)
        result = bfs(graph, 3)
        reached_levels = result.levels[result.levels != UNREACHED]
        histogram = np.bincount(reached_levels)
        assert histogram.tolist() == result.frontier_sizes

    def test_ring_levels(self):
        result = bfs(ring_graph(6), 0)
        assert result.levels.tolist() == [0, 1, 2, 3, 4, 5]
        assert result.frontier_sizes == [1] * 6

    def test_unreachable(self):
        graph = from_edges(4, [(0, 1)])
        result = bfs(graph, 0)
        assert result.levels[2] == UNREACHED
        assert result.num_reached == 2

    def test_isolated_source(self):
        graph = from_edges(3, [(1, 2)])
        result = bfs(graph, 0)
        assert result.num_reached == 1
        assert result.num_iterations == 1

    def test_bad_source(self):
        with pytest.raises(GraphError):
            bfs(ring_graph(4), 9)


class TestLargestReachableSet:
    def test_connected_graph_reaches_everything(self):
        graph = uniform_degree_graph(100, 5, seed=8, undirected=True)
        reached = largest_reachable_set(graph, num_probes=4, seed=0)
        assert reached.size == graph.num_vertices

    def test_returns_largest_component(self):
        # 0->1 chain and a big ring from 2..9 with no inter-links.
        edges = [(0, 1)] + [(i, 2 + (i - 1) % 8) for i in range(2, 10)]
        graph = from_edges(10, [(0, 1)] + [(i, i + 1) for i in range(2, 9)] + [(9, 2)])
        reached = largest_reachable_set(graph, num_probes=10, seed=1)
        assert reached.size >= 8
