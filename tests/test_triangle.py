"""Tests for the triangle-closing walk (custom state-query API)."""

import numpy as np
import pytest

from repro.algorithms import TriangleClosingWalk, common_neighbour_count
from repro.cluster import DistributedWalkEngine, MessageKind
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.core.program import StateQuery
from repro.core.walker import WalkerSet
from repro.errors import ProgramError
from repro.graph.builder import from_edges
from repro.graph.generators import uniform_degree_graph

from tests.helpers import assert_matches_distribution, diamond_graph


class TestCommonNeighbours:
    def test_counts(self):
        graph = diamond_graph()
        # N(0) = {1, 2}; N(3) = {1, 2}: two common neighbours.
        assert common_neighbour_count(graph, 0, 3) == 2
        # N(0) = {1, 2}; N(1) = {0, 2, 3}: one common (vertex 2).
        assert common_neighbour_count(graph, 0, 1) == 1

    def test_no_common(self):
        graph = from_edges(4, [(0, 1), (2, 3)], undirected=True)
        assert common_neighbour_count(graph, 0, 2) == 0


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ProgramError):
            TriangleClosingWalk(strength=0.0)
        with pytest.raises(ProgramError):
            TriangleClosingWalk(cap=0)

    def test_bounds(self):
        graph = diamond_graph()
        program = TriangleClosingWalk(strength=3.0)
        assert np.all(program.upper_bound_array(graph) == 4.0)
        assert np.all(program.lower_bound_array(graph) == 1.0)


class TestDynamicComponent:
    def test_scalar_values(self):
        graph = diamond_graph()
        program = TriangleClosingWalk(strength=2.0, cap=2)
        walkers = WalkerSet(np.array([1]))
        walkers.previous[:] = 0
        walkers.steps[:] = 1
        view = walkers.view(0)
        # Candidate 2: common(0, 2) = 1 -> 1 + 2 * 1/2 = 2.0
        assert program.edge_dynamic_comp(
            graph, view, graph.edge_index(1, 2)
        ) == pytest.approx(2.0)
        # Candidate 3: common(0, 3) = 2 -> saturated bonus 3.0
        assert program.edge_dynamic_comp(
            graph, view, graph.edge_index(1, 3)
        ) == pytest.approx(3.0)

    def test_custom_query_roundtrip(self):
        graph = diamond_graph()
        program = TriangleClosingWalk()
        walkers = WalkerSet(np.array([1]))
        walkers.previous[:] = 0
        walkers.steps[:] = 1
        query = program.state_query(
            graph, walkers.view(0), graph.edge_index(1, 3)
        )
        assert query == StateQuery(target_vertex=0, payload=3)
        assert program.answer_state_query(graph, query) == 2

    def test_batch_matches_scalar(self):
        graph = uniform_degree_graph(50, 5, seed=0, undirected=True)
        program = TriangleClosingWalk(strength=1.5, cap=3)
        walkers = WalkerSet(np.arange(10, dtype=np.int64))
        walkers.previous[:] = (np.arange(10) + 7) % 50
        walkers.steps[:] = 1
        edges = graph.offsets[walkers.current]
        batch = program.batch_dynamic_comp(
            graph, walkers, np.arange(10), edges
        )
        scalar = [
            program.edge_dynamic_comp(graph, walkers.view(i), int(e))
            for i, e in enumerate(edges)
        ]
        np.testing.assert_allclose(batch, scalar)


class TestWalkLaw:
    def exact_law(self, graph, program, current, previous):
        start, end = graph.edge_range(current)
        law = np.zeros(graph.num_vertices)
        for edge in range(start, end):
            target = int(graph.targets[edge])
            if previous < 0:
                law[target] += 1.0
            else:
                common = common_neighbour_count(graph, previous, target)
                law[target] += program._bonus(common)
        return law / law.sum()

    def test_second_step_exactness(self):
        graph = diamond_graph()
        program = TriangleClosingWalk(strength=4.0, cap=2)
        num_walkers = 10_000
        config = WalkConfig(
            num_walkers=num_walkers,
            max_steps=2,
            record_paths=True,
            seed=1,
            start_vertices=np.zeros(num_walkers, dtype=np.int64),
        )
        result = WalkEngine(graph, program, config).run()
        first = self.exact_law(graph, program, 0, -1)
        joint = np.zeros(16)
        for middle in range(4):
            if first[middle] == 0:
                continue
            second = self.exact_law(graph, program, middle, 0)
            joint[middle * 4 : (middle + 1) * 4] = first[middle] * second
        samples = [
            int(p[1]) * 4 + int(p[2]) for p in result.paths if len(p) == 3
        ]
        assert_matches_distribution(samples, joint)

    def test_prefers_triangle_dense_regions(self):
        # A clique of 5 glued to a path of 5 via vertex 0: the walker
        # should spend most time in the clique.
        edges = [
            (u, v) for u in range(5) for v in range(u + 1, 5)
        ] + [(0, 5), (5, 6), (6, 7), (7, 8)]
        graph = from_edges(9, edges, undirected=True)
        config = WalkConfig(
            num_walkers=500, max_steps=20, record_paths=True, seed=2
        )
        from repro.algorithms import UniformWalk
        from repro.analysis import visit_counts

        def clique_share(program):
            result = WalkEngine(graph, program, config).run()
            visits = visit_counts(result.paths, 9)
            return visits[:5].sum() / visits.sum()

        biased = clique_share(TriangleClosingWalk(strength=4.0))
        uniform = clique_share(UniformWalk())
        # The degree-proportional baseline already favours the clique;
        # the triangle bonus adds a measurable extra pull.
        assert biased > uniform + 0.02
        assert biased > 0.65


class TestDistributedQueries:
    def test_custom_queries_flow_through_the_engine(self):
        graph = uniform_degree_graph(80, 5, seed=3, undirected=True)
        config = WalkConfig(num_walkers=40, max_steps=8, seed=4)
        result = DistributedWalkEngine(
            graph, TriangleClosingWalk(), config, num_nodes=4
        ).run()
        network = result.cluster.network
        assert network.total_messages(MessageKind.STATE_QUERY) > 0
        assert result.stats.total_steps == 320
