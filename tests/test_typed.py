"""Tests for per-edge-type tables and the typed Meta-path engine."""

import numpy as np
import pytest

from repro.algorithms import MetaPathWalk, random_schemes
from repro.algorithms.metapath import SCHEME_STATE
from repro.baselines import TypedMetaPathWalkEngine
from repro.core.config import WalkConfig
from repro.core.engine import WalkEngine
from repro.errors import ProgramError, SamplingError
from repro.graph.builder import assign_random_weights, from_edges
from repro.graph.generators import uniform_degree_graph
from repro.graph.hetero import assign_random_edge_types
from repro.sampling.typed import TypedVertexAliasTables

from tests.helpers import assert_matches_distribution


@pytest.fixture
def typed_graph():
    graph = uniform_degree_graph(120, 6, seed=0, undirected=True)
    return assign_random_edge_types(graph, 3, seed=1)


class TestTypedTables:
    def test_requires_edge_types(self):
        graph = uniform_degree_graph(10, 2, seed=0)
        with pytest.raises(SamplingError):
            TypedVertexAliasTables(graph)

    def test_partition_covers_all_edges(self, typed_graph):
        tables = TypedVertexAliasTables(typed_graph)
        # Disjoint type partitions: total entries == |E| (the paper's
        # "without increasing pre-processing overhead" point).
        assert tables.total_entries() == typed_graph.num_edges

    def test_per_type_distribution(self):
        graph = from_edges(
            5,
            [
                (0, 1, 1.0),
                (0, 2, 3.0),
                (0, 3, 2.0),
                (0, 4, 5.0),
            ],
        )
        from repro.graph.csr import CSRGraph

        typed = CSRGraph(
            graph.offsets,
            graph.targets,
            weights=graph.weights,
            edge_types=np.array([0, 0, 1, 1], dtype=np.int32),
        )
        tables = TypedVertexAliasTables(typed)
        rng = np.random.default_rng(2)
        type0_samples = [tables.sample(0, 0, rng) for _ in range(10_000)]
        assert_matches_distribution(type0_samples, np.array([1.0, 3.0, 0, 0]))
        type1_samples = [
            tables.sample(0, 1, rng) - 2 for _ in range(10_000)
        ]
        assert_matches_distribution(type1_samples, np.array([2.0, 5.0]))

    def test_totals_and_has_type(self, typed_graph):
        tables = TypedVertexAliasTables(typed_graph)
        for vertex in range(0, 120, 13):
            start, end = typed_graph.edge_range(vertex)
            for edge_type in range(3):
                mask = typed_graph.edge_types[start:end] == edge_type
                expected = float(mask.sum())  # unweighted: count
                assert tables.total_static(vertex, edge_type) == expected
                assert tables.has_type(vertex, edge_type) == (expected > 0)
        assert not tables.has_type(0, 99)

    def test_missing_type_raises(self, typed_graph):
        tables = TypedVertexAliasTables(typed_graph)
        rng = np.random.default_rng(3)
        with pytest.raises(SamplingError):
            tables.sample(0, 7, rng)

    def test_sample_batch_marks_missing(self, typed_graph):
        tables = TypedVertexAliasTables(typed_graph)
        rng = np.random.default_rng(4)
        edges = tables.sample_batch(
            np.array([0, 0]), np.array([0, 7]), rng
        )
        assert edges[1] == -1

    def test_sample_batch_marks_negative_type(self, typed_graph):
        tables = TypedVertexAliasTables(typed_graph)
        edges = tables.sample_batch(
            np.array([0]), np.array([-1]), np.random.default_rng(4)
        )
        assert edges[0] == -1

    def test_sample_batch_distribution_matches_scalar(self):
        """The vectorised batch draw samples each (vertex, type)
        group's law — checked against the same weighted partition the
        scalar test uses."""
        graph = from_edges(
            5, [(0, 1, 1.0), (0, 2, 3.0), (0, 3, 2.0), (0, 4, 5.0)]
        )
        from repro.graph.csr import CSRGraph

        typed = CSRGraph(
            graph.offsets,
            graph.targets,
            weights=graph.weights,
            edge_types=np.array([0, 0, 1, 1], dtype=np.int32),
        )
        tables = TypedVertexAliasTables(typed)
        rng = np.random.default_rng(6)
        half = 20_000
        vertices = np.zeros(2 * half, dtype=np.int64)
        types = np.repeat([0, 1], half)
        edges = tables.sample_batch(vertices, types, rng)
        assert np.all(edges >= 0)
        assert_matches_distribution(edges[:half], np.array([1.0, 3.0, 0, 0]))
        assert_matches_distribution(
            edges[half:] - 2, np.array([2.0, 5.0])
        )

    def test_sample_batch_empty(self, typed_graph):
        tables = TypedVertexAliasTables(typed_graph)
        edges = tables.sample_batch(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.random.default_rng(4),
        )
        assert edges.size == 0


class TestTypedMetaPathEngine:
    def test_rejects_non_metapath_programs(self, typed_graph):
        from repro.algorithms import DeepWalk

        with pytest.raises(ProgramError):
            TypedMetaPathWalkEngine(typed_graph, DeepWalk())

    def test_paths_follow_schemes(self, typed_graph):
        schemes = random_schemes(4, 3, 3, seed=5)
        program = MetaPathWalk(schemes)
        config = WalkConfig(num_walkers=60, max_steps=6, record_paths=True, seed=6)
        engine = TypedMetaPathWalkEngine(typed_graph, program, config)
        result = engine.run()
        assignments = engine.walkers.state(SCHEME_STATE)
        for walker_id, path in enumerate(result.paths):
            scheme = schemes[int(assignments[walker_id])]
            for step, (source, target) in enumerate(zip(path[:-1], path[1:])):
                required = scheme[step % len(scheme)]
                start, count = typed_graph.edge_span_batch(
                    np.array([source]), np.array([target])
                )
                types = typed_graph.edge_types[start[0] : start[0] + count[0]]
                assert required in types

    def test_zero_pd_evaluations(self, typed_graph):
        program = MetaPathWalk(random_schemes(4, 3, 3, seed=7))
        config = WalkConfig(num_walkers=80, max_steps=8, seed=8)
        result = TypedMetaPathWalkEngine(typed_graph, program, config).run()
        assert result.stats.counters.pd_evaluations == 0
        assert result.stats.trials_per_step == pytest.approx(1.0, abs=0.2)

    def test_matches_rejection_engine_law(self, typed_graph):
        """Typed tables and rejection sampling draw the same walks."""
        weighted = assign_random_weights(typed_graph, seed=9)
        weighted_typed = assign_random_edge_types(weighted, 3, seed=1)
        schemes = [[0, 1, 2]]
        histograms = {}
        for engine_cls in (WalkEngine, TypedMetaPathWalkEngine):
            config = WalkConfig(
                num_walkers=6000,
                max_steps=2,
                record_paths=True,
                seed=10,
                start_vertices=np.zeros(6000, dtype=np.int64),
            )
            result = engine_cls(
                weighted_typed, MetaPathWalk(schemes), config
            ).run()
            finals = [int(p[-1]) for p in result.paths if len(p) == 3]
            histograms[engine_cls.__name__] = np.bincount(
                finals, minlength=120
            )
        a = histograms["WalkEngine"].astype(float)
        b = histograms["TypedMetaPathWalkEngine"].astype(float)
        if a.sum() and b.sum():
            assert np.abs(a / a.sum() - b / b.sum()).max() < 0.05

    def test_dead_end_handling(self):
        graph = from_edges(3, [(0, 1), (1, 2)])
        from repro.graph.csr import CSRGraph

        typed = CSRGraph(
            graph.offsets, graph.targets,
            edge_types=np.array([0, 0], dtype=np.int32),
        )
        program = MetaPathWalk([[0, 1]])  # type 1 never exists
        config = WalkConfig(num_walkers=1, max_steps=5, record_paths=True,
                            start_vertices=np.array([0]))
        result = TypedMetaPathWalkEngine(typed, program, config).run()
        # First step (type 0) succeeds, second (type 1) dead-ends.
        assert result.paths[0].tolist() == [0, 1]
        assert result.stats.termination.by_dead_end == 1
