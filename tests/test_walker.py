"""Unit tests for walker state storage."""

import numpy as np
import pytest

from repro.core.walker import NO_VERTEX, WalkerSet, WalkerView
from repro.errors import ProgramError


@pytest.fixture
def walkers():
    return WalkerSet(np.array([3, 1, 4, 1, 5]))


class TestWalkerSet:
    def test_initial_state(self, walkers):
        assert walkers.num_walkers == 5
        assert walkers.num_active == 5
        assert walkers.current.tolist() == [3, 1, 4, 1, 5]
        assert np.all(walkers.previous == NO_VERTEX)
        assert np.all(walkers.steps == 0)

    def test_move(self, walkers):
        walkers.move(np.array([0, 2]), np.array([7, 8]))
        assert walkers.current.tolist() == [7, 1, 8, 1, 5]
        assert walkers.previous.tolist() == [3, NO_VERTEX, 4, NO_VERTEX, NO_VERTEX]
        assert walkers.steps.tolist() == [1, 0, 1, 0, 0]

    def test_kill(self, walkers):
        walkers.kill(np.array([1, 3]))
        assert walkers.num_active == 3
        assert walkers.active_ids().tolist() == [0, 2, 4]

    def test_custom_state(self, walkers):
        walkers.add_state("scheme", np.array([0, 1, 2, 3, 4]))
        assert walkers.has_state("scheme")
        assert walkers.state("scheme")[2] == 2

    def test_custom_state_wrong_size(self, walkers):
        with pytest.raises(ProgramError):
            walkers.add_state("bad", np.array([1, 2]))

    def test_missing_state(self, walkers):
        with pytest.raises(ProgramError):
            walkers.state("nope")


class TestWalkerView:
    def test_attributes(self, walkers):
        view = walkers.view(0)
        assert view.current == 3
        assert view.prev == NO_VERTEX
        assert view.step == 0
        assert view.alive

        walkers.move(np.array([0]), np.array([9]))
        assert view.current == 9
        assert view.prev == 3
        assert view.step == 1

    def test_state_access(self, walkers):
        walkers.add_state("flag", np.zeros(5, dtype=np.int64))
        view = walkers.view(4)
        view.set_state("flag", 7)
        assert view.state("flag") == 7
        assert walkers.state("flag")[4] == 7

    def test_repr(self, walkers):
        assert "WalkerView" in repr(walkers.view(1))

    def test_view_tracks_death(self, walkers):
        view = walkers.view(2)
        walkers.kill(np.array([2]))
        assert not view.alive
